(* Example 3.3 with exactly representable probabilities: the paper uses
   p_n = 6/(pi^2 n^2); we use the telescoping p_n = 1/(n(n+1)), which sums
   to exactly 1, is within a constant factor of 1/n^2, and keeps
   E(S) = sum 2^n/(n(n+1)) divergent. *)

let p_n n = Rational.of_ints 1 (n * (n + 1))

let d_n n =
  (* R(1), ..., R(2^n).  Sizes grow exponentially; keep n modest. *)
  Instance.of_list
    (List.init (1 lsl n) (fun i -> Fact.make "R" [ Value.Int (i + 1) ]))

let example_3_3 () =
  Seq.map (fun n -> (d_n n, p_n n)) (Seq.ints 1)

let example_3_3_expected_size_prefix nmax =
  let rec go acc n =
    if n > nmax then acc
    else
      go
        (Rational.add acc (Rational.mul (p_n n) (Rational.of_int (1 lsl n))))
        (n + 1)
  in
  go Rational.zero 1

let example_3_3_mass_prefix nmax =
  let rec go acc n =
    if n > nmax then acc else go (Rational.add acc (p_n n)) (n + 1)
  in
  go Rational.zero 1

let tail_size_probability worlds n =
  List.fold_left
    (fun acc (inst, p) ->
      if Instance.size inst >= n then Rational.add acc p else acc)
    Rational.zero worlds

let histogram draw ~samples =
  let tbl = Hashtbl.create 32 in
  for i = 0 to samples - 1 do
    let s = Instance.size (draw i) in
    Hashtbl.replace tbl s (1 + Option.value (Hashtbl.find_opt tbl s) ~default:0)
  done;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let mean_size draw ~samples =
  let total = ref 0 in
  for i = 0 to samples - 1 do
    total := !total + Instance.size (draw i)
  done;
  float_of_int !total /. float_of_int samples
