type result = {
  estimate : Rational.t;
  eps : float;
  n_used : int;
  tail_mass : float;
  omega_n_bounds : Interval.t;
  bounds : Interval.t;
}

(* The truncation point needs alpha_n = (3/2) * tail(n) to satisfy both
   e^{alpha_n} <= 1 + eps and e^{-alpha_n} >= 1 - eps; the binding
   constraint is alpha_n <= ln(1 + eps) (smaller than -ln(1 - eps)).
   Claim (∗) additionally needs every truncated probability below 1/2,
   which tail(n) <= ln(1+eps)*2/3 < 1/2 already implies for eps < 1/2. *)
let required_tail eps = 2.0 /. 3.0 *. log1p eps

let check_eps eps =
  if not (eps > 0.0 && eps < 0.5) then
    invalid_arg "Approx_eval: eps must lie in (0, 1/2)"

let truncation_point ?max_n src ~eps =
  check_eps eps;
  Fact_source.prefix_for_tail ?max_n src (required_tail eps)

let truncate_or_fail ?max_n src ~eps =
  match truncation_point ?max_n src ~eps with
  | Some n -> n
  | None ->
    if not (Fact_source.converges src) then
      invalid_arg
        (Printf.sprintf
           "Approx_eval: source %s diverges; no tuple-independent PDB exists \
            (Theorem 4.8), nothing to approximate"
           (Fact_source.name src))
    else
      invalid_arg
        (Printf.sprintf
           "Approx_eval: source %s converges too slowly: no adequate \
            truncation below the bound (cf. the closing remark of Section 6)"
           (Fact_source.name src))

let omega_bounds src n =
  (* P(Omega_n) = prod_{i>=n} (1 - p_i): none of the truncated facts
     occurs.  Lower bound from claim (∗), upper bound trivially 1 minus
     nothing (each factor <= 1). *)
  match Fact_source.tail_mass src n with
  | Some t when t < 0.5 -> Interval.make (exp (-1.5 *. t)) 1.0
  | Some _ -> Interval.make 0.0 1.0
  | None -> assert false

let boolean ?max_n src ~eps phi =
  let n = truncate_or_fail ?max_n src ~eps in
  let table = Fact_source.truncate src n in
  let p = Query_eval.boolean table phi in
  let tail = Option.value (Fact_source.tail_mass src n) ~default:nan in
  let om = omega_bounds src n in
  let pf = Prob.Interval_carrier.of_rational p in
  let lower = Interval.mul pf om in
  let bounds =
    Interval.clamp01
      (Interval.make (Interval.lo lower)
         (Interval.hi (Interval.add lower (Interval.compl om))))
  in
  { estimate = p; eps; n_used = n; tail_mass = tail; omega_n_bounds = om; bounds }

let marginals ?max_n src ~eps phi =
  let n = truncate_or_fail ?max_n src ~eps in
  let table = Fact_source.truncate src n in
  Query_eval.marginals table phi

(* ------------------------------------------------------------------ *)
(* Proposition 6.2 witness *)
(* ------------------------------------------------------------------ *)

let prop62_witness ~first_acceptance ~horizon =
  if first_acceptance < 1 || horizon < first_acceptance then
    invalid_arg "Approx_eval.prop62_witness";
  let fact k =
    let rel = if k = first_acceptance then "R" else "S" in
    (Fact.make rel [ Value.Int k ], Rational.pow Rational.half k)
  in
  let entries = List.init horizon (fun i -> fact (i + 1)) in
  Fact_source.of_list
    ~name:(Printf.sprintf "prop62(t0=%d)" first_acceptance)
    entries
