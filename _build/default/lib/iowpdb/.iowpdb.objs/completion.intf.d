lib/iowpdb/completion.mli: Approx_eval Countable_ti Fact Fact_source Finite_pdb Fo Interval Rational Ti_table Tuple
