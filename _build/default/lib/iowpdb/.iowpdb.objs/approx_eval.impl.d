lib/iowpdb/approx_eval.ml: Fact Fact_source Interval List Option Printf Prob Query_eval Rational Value
