lib/iowpdb/sampler.ml: Float Hashtbl Instance Prng Seq
