lib/iowpdb/size_dist.ml: Fact Hashtbl Instance List Option Rational Seq Value
