lib/iowpdb/approx_eval.mli: Fact_source Fo Interval Rational Tuple
