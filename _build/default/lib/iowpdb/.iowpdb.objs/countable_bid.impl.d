lib/iowpdb/countable_bid.ml: Array Bid_table Fact Instance List Printf Prng Rational Seq Stdlib
