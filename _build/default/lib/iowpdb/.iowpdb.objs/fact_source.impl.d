lib/iowpdb/fact_source.ml: Array Fact Float Hashtbl List Option Printf Rational Seq Stdlib Ti_table
