lib/iowpdb/fact_source.mli: Fact Rational Seq Ti_table
