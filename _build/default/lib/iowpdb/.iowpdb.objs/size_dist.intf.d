lib/iowpdb/size_dist.mli: Instance Rational Seq
