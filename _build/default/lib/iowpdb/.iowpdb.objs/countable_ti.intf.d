lib/iowpdb/countable_ti.mli: Fact Fact_source Instance Interval Prng Rational Ti_table
