lib/iowpdb/countable_ti.ml: Array Fact Fact_source Instance Interval List Option Printf Prng Prob Rational
