lib/iowpdb/completion.ml: Approx_eval Array Bdd Bool_expr Countable_ti Fact Fact_source Finite_pdb Fo Fo_eval Hashtbl Instance Interval Lineage List Option Printf Prob Rational Seq Tuple Wmc
