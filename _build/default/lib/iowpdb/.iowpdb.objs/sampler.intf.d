lib/iowpdb/sampler.mli: Fact Instance Prng
