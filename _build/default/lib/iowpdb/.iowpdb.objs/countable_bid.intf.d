lib/iowpdb/countable_bid.mli: Bid_table Fact Instance Prng Rational Seq
