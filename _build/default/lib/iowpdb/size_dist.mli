(** Size distributions of probabilistic databases (Section 3.2).

    The random variable [S_D = ‖D‖].  For countable PDBs,
    [E(S_D) = sum_f P(E_f)] (equation (5)); tuple-independent PDBs always
    have finite expected size (Corollary 4.7), while general countable
    PDBs need not (Example 3.3) — the gap behind the non-definability
    result of Proposition 4.9. *)

val example_3_3 : unit -> (Instance.t * Rational.t) Seq.t
(** The paper's Example 3.3: instance [D_n = {R(1), ..., R(2^n)}] with
    probability [p_n] proportional to [1/n^2] — here exactly
    [p_n = c/(n(n+1))] with [c = 1] shifted to keep a probability
    distribution with the same [2^n / n^2]-style growth, so that
    [E(S_D) = sum p_n * 2^n] still diverges.  Infinite sequence;
    take a prefix. *)

val example_3_3_expected_size_prefix : int -> Rational.t
(** [sum_{n<=N} p_n * ‖D_n‖]: the truncated expectation, which grows
    without bound (the experiment E4 series). *)

val example_3_3_mass_prefix : int -> Rational.t
(** [sum_{n<=N} p_n]: approaches 1. *)

val tail_size_probability : (Instance.t * Rational.t) list -> int -> Rational.t
(** [P(S_D >= n)] of an explicit (sub-)distribution — equation (6) says
    this vanishes as [n] grows for any PDB. *)

val histogram : (int -> Instance.t) -> samples:int -> (int * int) list
(** Sample sizes: [histogram draw ~samples] calls [draw i] for
    [i = 0..samples-1] and tallies [‖D‖]; returns (size, count) sorted. *)

val mean_size : (int -> Instance.t) -> samples:int -> float
