type t =
  | Int of int
  | Str of string
  | Real of float
  | Bool of bool

type sort = S_int | S_str | S_real | S_bool

let sort_of = function
  | Int _ -> S_int
  | Str _ -> S_str
  | Real _ -> S_real
  | Bool _ -> S_bool

let sort_name = function
  | S_int -> "int"
  | S_str -> "string"
  | S_real -> "real"
  | S_bool -> "bool"

let sort_rank = function S_int -> 0 | S_str -> 1 | S_real -> 2 | S_bool -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Real x, Real y -> Float.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | _ -> Stdlib.compare (sort_rank (sort_of a)) (sort_rank (sort_of b))

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let to_string = function
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Real f -> Printf.sprintf "%h" f
  | Bool b -> string_of_bool b

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Value.of_string: empty"
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Str (Scanf.sscanf s "%S" Fun.id)
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f when not (Float.is_nan f) -> Real f
        | _ -> invalid_arg (Printf.sprintf "Value.of_string: %S" s))

let enum_ints () =
  let rec from k () =
    (* k >= 0 encodes 0, 1, -1, 2, -2, ... *)
    let v = if k land 1 = 1 then (k + 1) / 2 else -(k / 2) in
    Seq.Cons (Int v, from (k + 1))
  in
  from 0

let enum_naturals () = Seq.map (fun n -> Int n) (Seq.ints 1)

let enum_strings ?(alphabet = "ab") () =
  let k = String.length alphabet in
  if k = 0 then invalid_arg "Value.enum_strings: empty alphabet";
  (* Bijective base-k numeration: the n-th string (n >= 0) over the
     alphabet in length-lexicographic order. *)
  let nth n =
    let buf = Buffer.create 8 in
    let rec go n =
      if n > 0 then begin
        let n = n - 1 in
        go (n / k);
        Buffer.add_char buf alphabet.[n mod k]
      end
    in
    go n;
    Buffer.contents buf
  in
  Seq.map (fun n -> Str (nth n)) (Seq.ints 0)

let rec interleave a b () =
  match a () with
  | Seq.Nil -> b ()
  | Seq.Cons (x, a') -> Seq.Cons (x, interleave b a')
