(** Tuples of values, with the order and containers relational operators
    need. *)

type t = Value.t array

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
