(** Database schemas: finite sets of relation symbols with arities.

    A schema [tau = {R_1, ..., R_m}] in the sense of Section 2.1 of the
    paper.  Optionally each attribute position can be constrained to a
    value sort, which the open-world completion uses to restrict the fact
    space [F(tau, U)] (as in Example 5.7, where [R] is a relation between
    names and natural numbers). *)

type relation = private {
  rel_name : string;
  arity : int;
  sorts : Value.sort array option;
      (** [Some a] constrains position [i] to sort [a.(i)]. *)
}

type t

val relation : ?sorts:Value.sort list -> string -> int -> relation
(** @raise Invalid_argument on empty name, negative arity, or a sorts list
    whose length differs from the arity. *)

val make : relation list -> t
(** @raise Invalid_argument on duplicate relation names. *)

val empty : t
val relations : t -> relation list
val find : t -> string -> relation option
val find_exn : t -> string -> relation
val mem : t -> string -> bool
val arity : t -> string -> int
(** @raise Not_found for unknown relations. *)

val add : t -> relation -> t
val union : t -> t -> t
(** @raise Invalid_argument if a name occurs in both with different
    declarations. *)

val max_arity : t -> int
val pp : Format.formatter -> t -> unit
