type relation = {
  rel_name : string;
  arity : int;
  sorts : Value.sort array option;
}

module M = Map.Make (String)

type t = relation M.t

let relation ?sorts name arity =
  if name = "" then invalid_arg "Schema.relation: empty name";
  if arity < 0 then invalid_arg "Schema.relation: negative arity";
  let sorts =
    match sorts with
    | None -> None
    | Some l ->
      if List.length l <> arity then
        invalid_arg "Schema.relation: sorts length mismatch"
      else Some (Array.of_list l)
  in
  { rel_name = name; arity; sorts }

let empty = M.empty

let add t r =
  match M.find_opt r.rel_name t with
  | Some r' when r' <> r ->
    invalid_arg (Printf.sprintf "Schema.add: conflicting declaration of %s" r.rel_name)
  | _ -> M.add r.rel_name r t

let make rs =
  List.fold_left
    (fun acc r ->
      if M.mem r.rel_name acc then
        invalid_arg (Printf.sprintf "Schema.make: duplicate relation %s" r.rel_name)
      else M.add r.rel_name r acc)
    M.empty rs

let relations t = List.map snd (M.bindings t)
let find t name = M.find_opt name t

let find_exn t name =
  match M.find_opt name t with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Schema: unknown relation %s" name)

let mem t name = M.mem name t
let arity t name = (M.find name t).arity

let union a b = M.fold (fun _ r acc -> add acc r) b a

let max_arity t = M.fold (fun _ r acc -> Stdlib.max acc r.arity) t 0

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  M.iter
    (fun _ r ->
      Format.fprintf fmt "%s/%d" r.rel_name r.arity;
      (match r.sorts with
       | Some ss ->
         Format.fprintf fmt "(%s)"
           (String.concat ", "
              (Array.to_list (Array.map Value.sort_name ss)))
       | None -> ());
      Format.fprintf fmt "@ ")
    t;
  Format.fprintf fmt "@]"
