type t = Fact.Set.t

let empty = Fact.Set.empty
let is_empty = Fact.Set.is_empty
let singleton = Fact.Set.singleton
let add = Fact.Set.add
let remove = Fact.Set.remove
let mem = Fact.Set.mem
let of_list = Fact.Set.of_list
let to_list = Fact.Set.elements
let of_set s = s
let to_set s = s
let size = Fact.Set.cardinal
let union = Fact.Set.union
let inter = Fact.Set.inter
let diff = Fact.Set.diff
let subset = Fact.Set.subset

let disjoint_union a b =
  if Fact.Set.disjoint a b then Fact.Set.union a b
  else invalid_arg "Instance.disjoint_union: operands share a fact"

let intersects d f = not (Fact.Set.disjoint d f)

module VSet = Set.Make (Value)

let active_domain d =
  Fact.Set.fold
    (fun f acc -> List.fold_left (fun acc v -> VSet.add v acc) acc (Fact.args f))
    d VSet.empty
  |> VSet.elements

let relations_used d =
  Fact.Set.fold (fun f acc -> f.Fact.rel :: acc) d []
  |> List.sort_uniq String.compare

let tuples_of d name =
  Fact.Set.fold
    (fun f acc ->
      if String.equal f.Fact.rel name then f.Fact.args :: acc else acc)
    d []
  |> List.rev

let filter = Fact.Set.filter
let fold = Fact.Set.fold
let iter = Fact.Set.iter
let for_all = Fact.Set.for_all
let exists = Fact.Set.exists
let compare = Fact.Set.compare
let equal = Fact.Set.equal

let conforms schema d = for_all (Fact.conforms schema) d

let to_string d =
  "{" ^ String.concat ", " (List.map Fact.to_string (to_list d)) ^ "}"

let pp fmt d = Format.pp_print_string fmt (to_string d)

let subsets d =
  let facts = Array.of_list (to_list d) in
  let n = Array.length facts in
  if n > 30 then invalid_arg "Instance.subsets: instance too large";
  Seq.init (1 lsl n) (fun mask ->
      let s = ref Fact.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Fact.Set.add facts.(i) !s
      done;
      !s)
