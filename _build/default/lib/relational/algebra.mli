(** A small positional relational algebra over deterministic instances.

    Used by the examples and as the deterministic reference point for the
    probabilistic engines: a safe plan evaluated extensionally over a
    tuple-independent PDB has exactly this algebra as its shape. *)

type expr =
  | Rel of string  (** all tuples of a base relation *)
  | Const of Tuple.t list  (** a literal relation *)
  | Select of (Tuple.t -> bool) * expr
  | Select_eq of int * Value.t * expr  (** column = constant *)
  | Project of int list * expr  (** keep the listed columns, in order *)
  | Product of expr * expr
  | Join of (int * int) list * expr * expr
      (** equi-join: pairs [(i, j)] equate column [i] of the left operand
          with column [j] of the right; the result concatenates both
          tuples. *)
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr

val arity_of : Schema.t -> expr -> int
(** Static arity of the result.
    @raise Invalid_argument on arity mismatches (union of different
    widths, projection out of range, unknown relation...). *)

val eval : Schema.t -> Instance.t -> expr -> Tuple.Set.t
(** Set semantics; validates the expression first. *)

val eval_list : Schema.t -> Instance.t -> expr -> Tuple.t list
(** Sorted, duplicate-free list view of {!eval}. *)
