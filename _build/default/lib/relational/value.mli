(** Values of the database universe.

    The paper's universe [U] is an arbitrary (possibly uncountable) set,
    typically [Sigma* ∪ R].  We realize it as the disjoint union of
    integers, strings, IEEE reals and booleans.  The integer and string
    sorts come with explicit countable enumerations, which is what the
    open-world completion of Section 5 enumerates new facts from. *)

type t =
  | Int of int
  | Str of string
  | Real of float
  | Bool of bool

type sort = S_int | S_str | S_real | S_bool

val sort_of : t -> sort
val sort_name : sort -> string

val compare : t -> t -> int
(** Total order: by sort first, then within the sort.  Reals compare by
    IEEE ordering with NaN rejected at construction sites. *)

val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Strings are quoted, e.g. ["abc"] prints as ["\"abc\""]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Inverse of {!to_string}: quoted -> [Str], [true]/[false] -> [Bool],
    integer literal -> [Int], other numeric -> [Real].
    @raise Invalid_argument on empty or unparseable input. *)

(** {1 Countable enumerations} *)

val enum_ints : unit -> t Seq.t
(** [0, 1, -1, 2, -2, ...]: every integer appears exactly once. *)

val enum_naturals : unit -> t Seq.t
(** [1, 2, 3, ...]. *)

val enum_strings : ?alphabet:string -> unit -> t Seq.t
(** All strings over the alphabet (default ["ab"]) in length-lexicographic
    order, starting with the empty string; every string appears exactly
    once. *)

val interleave : t Seq.t -> t Seq.t -> t Seq.t
(** Fair interleaving; if both sequences are injective with disjoint
    ranges, so is the result. *)
