(** Facts [R(a_1, ..., a_k)]: the atoms database instances are made of. *)

type t = private { rel : string; args : Value.t array }

val make : string -> Value.t list -> t
(** @raise Invalid_argument on an empty relation name. *)

val make_arr : string -> Value.t array -> t

val checked : Schema.t -> string -> Value.t list -> t
(** Like {!make} but validates relation existence, arity and (when
    declared) attribute sorts against the schema.
    @raise Invalid_argument on any mismatch. *)

val conforms : Schema.t -> t -> bool
(** Does this fact belong to [F(tau, U)] for the given schema (with sort
    restrictions)? *)

val rel : t -> string
val args : t -> Value.t list
val arity : t -> int
val arg : t -> int -> Value.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** [R(1, "x")]. *)

val of_string : string -> t
(** Inverse of {!to_string} for simple values.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
