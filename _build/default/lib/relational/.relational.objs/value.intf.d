lib/relational/value.mli: Format Seq
