lib/relational/fact.ml: Array Buffer Format Hashtbl List Map Printf Schema Set Stdlib String Value
