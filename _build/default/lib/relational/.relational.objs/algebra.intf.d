lib/relational/algebra.mli: Instance Schema Tuple Value
