lib/relational/algebra.ml: Array Hashtbl Instance List Schema Tuple Value
