lib/relational/instance.ml: Array Fact Format List Seq Set String Value
