lib/relational/instance.mli: Fact Format Schema Seq Value
