lib/relational/value.ml: Buffer Float Format Fun Hashtbl Printf Scanf Seq Stdlib String
