lib/relational/tuple.ml: Array Format Hashtbl List Map Set Stdlib String Value
