(** Finite database instances: finite sets of facts.

    In the paper's terms a [(tau, U)]-instance [D], identified with the set
    of facts it contains (Section 2.1).  Instances are the sample points of
    every probabilistic database in this repository — infinite PDBs have
    infinitely many instances, but each one is finite. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Fact.t -> t
val add : Fact.t -> t -> t
val remove : Fact.t -> t -> t
val mem : Fact.t -> t -> bool
val of_list : Fact.t list -> t
val to_list : t -> Fact.t list
val of_set : Fact.Set.t -> t
val to_set : t -> Fact.Set.t

val size : t -> int
(** [‖D‖]: the number of facts. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val disjoint_union : t -> t -> t
(** @raise Invalid_argument if the operands share a fact — used by the
    completion construction of Theorem 5.5, whose instances decompose
    uniquely as [D ⊎ C]. *)

val intersects : t -> Fact.Set.t -> bool
(** Does the instance contain a fact from the given set?  This is the
    event [E_F] of Definition 3.1. *)

val active_domain : t -> Value.t list
(** [adom(D)], sorted, without duplicates. *)

val relations_used : t -> string list

val tuples_of : t -> string -> Value.t array list
(** All argument tuples of the given relation, in fact order. *)

val filter : (Fact.t -> bool) -> t -> t
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val for_all : (Fact.t -> bool) -> t -> bool
val exists : (Fact.t -> bool) -> t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val conforms : Schema.t -> t -> bool

val to_string : t -> string
(** ["{R(1), S(2)}"] in fact order. *)

val pp : Format.formatter -> t -> unit

val subsets : t -> t Seq.t
(** All [2^‖D‖] sub-instances; used by exhaustive tests and the
    world-enumeration engine.  Intended for small instances. *)
