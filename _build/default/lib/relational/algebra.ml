type expr =
  | Rel of string
  | Const of Tuple.t list
  | Select of (Tuple.t -> bool) * expr
  | Select_eq of int * Value.t * expr
  | Project of int list * expr
  | Product of expr * expr
  | Join of (int * int) list * expr * expr
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr

let rec arity_of schema = function
  | Rel name -> (Schema.find_exn schema name).Schema.arity
  | Const [] -> 0
  | Const (t :: rest) ->
    let a = Array.length t in
    List.iter
      (fun t' ->
        if Array.length t' <> a then
          invalid_arg "Algebra: ragged constant relation")
      rest;
    a
  | Select (_, e) -> arity_of schema e
  | Select_eq (i, _, e) ->
    let a = arity_of schema e in
    if i < 0 || i >= a then invalid_arg "Algebra: select column out of range";
    a
  | Project (cols, e) ->
    let a = arity_of schema e in
    List.iter
      (fun c ->
        if c < 0 || c >= a then
          invalid_arg "Algebra: projection column out of range")
      cols;
    List.length cols
  | Product (l, r) -> arity_of schema l + arity_of schema r
  | Join (eqs, l, r) ->
    let al = arity_of schema l and ar = arity_of schema r in
    List.iter
      (fun (i, j) ->
        if i < 0 || i >= al || j < 0 || j >= ar then
          invalid_arg "Algebra: join column out of range")
      eqs;
    al + ar
  | Union (l, r) | Inter (l, r) | Diff (l, r) ->
    let al = arity_of schema l and ar = arity_of schema r in
    if al <> ar then invalid_arg "Algebra: set operation arity mismatch";
    al

let rec eval_raw schema inst = function
  | Rel name ->
    Tuple.Set.of_list (Instance.tuples_of inst name)
  | Const ts -> Tuple.Set.of_list ts
  | Select (p, e) -> Tuple.Set.filter p (eval_raw schema inst e)
  | Select_eq (i, v, e) ->
    Tuple.Set.filter (fun t -> Value.equal t.(i) v) (eval_raw schema inst e)
  | Project (cols, e) ->
    Tuple.Set.fold
      (fun t acc ->
        Tuple.Set.add (Array.of_list (List.map (fun c -> t.(c)) cols)) acc)
      (eval_raw schema inst e) Tuple.Set.empty
  | Product (l, r) ->
    let lv = eval_raw schema inst l and rv = eval_raw schema inst r in
    Tuple.Set.fold
      (fun tl acc ->
        Tuple.Set.fold
          (fun tr acc -> Tuple.Set.add (Array.append tl tr) acc)
          rv acc)
      lv Tuple.Set.empty
  | Join (eqs, l, r) ->
    let lv = eval_raw schema inst l and rv = eval_raw schema inst r in
    (* Hash the right side on its join key. *)
    let key_of cols t = Array.of_list (List.map (fun c -> t.(c)) cols) in
    let lcols = List.map fst eqs and rcols = List.map snd eqs in
    let index = Hashtbl.create 64 in
    Tuple.Set.iter
      (fun tr ->
        let k = key_of rcols tr in
        Hashtbl.add index (Tuple.to_string k) tr)
      rv;
    Tuple.Set.fold
      (fun tl acc ->
        let k = key_of lcols tl in
        List.fold_left
          (fun acc tr -> Tuple.Set.add (Array.append tl tr) acc)
          acc
          (Hashtbl.find_all index (Tuple.to_string k)))
      lv Tuple.Set.empty
  | Union (l, r) -> Tuple.Set.union (eval_raw schema inst l) (eval_raw schema inst r)
  | Inter (l, r) -> Tuple.Set.inter (eval_raw schema inst l) (eval_raw schema inst r)
  | Diff (l, r) -> Tuple.Set.diff (eval_raw schema inst l) (eval_raw schema inst r)

let eval schema inst e =
  ignore (arity_of schema e);
  eval_raw schema inst e

let eval_list schema inst e = Tuple.Set.elements (eval schema inst e)
