(** Finite probabilistic databases as explicit world tables.

    The most general finite PDB: a finite probability space whose sample
    points are instances (Definition 3.1 restricted to finite [Omega]).
    TI and BID tables embed into this representation; views and
    conditioning are defined here because they are representation-level
    operations (Section 3.1, equation (3)). *)

type t

val create : (Instance.t * Rational.t) list -> t
(** Duplicate instances have their masses merged; zero-mass entries are
    kept in the sample space (instances of probability 0 are explicitly
    allowed by the paper — see the discussion after Definition 3.1).
    @raise Invalid_argument if masses are negative or do not sum to
    exactly 1. *)

val deterministic : Instance.t -> t
val worlds : t -> (Instance.t * Rational.t) list
val num_worlds : t -> int

val prob_of : t -> Instance.t -> Rational.t
(** Mass of one instance (0 if absent from the sample space). *)

val prob_event : t -> (Instance.t -> bool) -> Rational.t

val prob_ef : t -> Fact.t -> Rational.t
(** [P(E_f)]: the marginal of one fact (Definition 3.1). *)

val prob_intersects : t -> Fact.Set.t -> Rational.t
(** [P(E_F)] for a set of facts. *)

val fact_universe : t -> Fact.t list
(** [F(D)]: facts occurring in some world (regardless of its mass). *)

val expected_size : t -> Rational.t
val size_distribution : t -> (int * Rational.t) list

val condition : t -> (Instance.t -> bool) -> t
(** Conditional distribution given the event.
    @raise Invalid_argument when the event has probability zero. *)

val map : (Instance.t -> Instance.t) -> t -> t
(** Pushforward along an arbitrary view [V]: equation (3). *)

val apply_fo_view : (string * Fo.t) list -> t -> t
(** FO-view: each pair [(R', phi)] defines target relation [R'] as
    [phi(D)] under active-domain semantics.  The result is the
    pushforward PDB of the view (Section 3.1). *)

val product : t -> t -> t
(** Independent product via disjoint union of instances — the coupling
    used in the proof of Theorem 5.5.
    @raise Invalid_argument if some pair of worlds shares a fact. *)

val of_ti : Ti_table.t -> t
val of_bid : Bid_table.t -> t

val is_tuple_independent : t -> bool
(** Checks Lemma 4.2's criterion exhaustively: all fact events
    independent.  Exponential in the number of distinct facts; testing
    only. *)

val sample : t -> Prng.t -> Instance.t

val equal_distribution : t -> t -> bool
(** Same masses on the union of supports (instances of mass 0 are
    ignored). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
