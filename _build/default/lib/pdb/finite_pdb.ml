module IMap = Map.Make (struct
  type t = Instance.t

  let compare = Instance.compare
end)

type t = { worlds : Rational.t IMap.t }

let create entries =
  let m =
    List.fold_left
      (fun acc (inst, p) ->
        if Rational.sign p < 0 then
          invalid_arg "Finite_pdb.create: negative probability";
        let prev = Option.value (IMap.find_opt inst acc) ~default:Rational.zero in
        IMap.add inst (Rational.add prev p) acc)
      IMap.empty entries
  in
  let total = IMap.fold (fun _ p acc -> Rational.add acc p) m Rational.zero in
  if not (Rational.equal total Rational.one) then
    invalid_arg
      (Printf.sprintf "Finite_pdb.create: masses sum to %s, not 1"
         (Rational.to_string total))
  else { worlds = m }

let deterministic inst = create [ (inst, Rational.one) ]

let worlds t = IMap.bindings t.worlds
let num_worlds t = IMap.cardinal t.worlds

let prob_of t inst =
  Option.value (IMap.find_opt inst t.worlds) ~default:Rational.zero

let prob_event t pred =
  IMap.fold
    (fun inst p acc -> if pred inst then Rational.add acc p else acc)
    t.worlds Rational.zero

let prob_ef t f = prob_event t (fun inst -> Instance.mem f inst)

let prob_intersects t fs = prob_event t (fun inst -> Instance.intersects inst fs)

let fact_universe t =
  IMap.fold
    (fun inst _ acc -> Fact.Set.union acc (Instance.to_set inst))
    t.worlds Fact.Set.empty
  |> Fact.Set.elements

let expected_size t =
  IMap.fold
    (fun inst p acc ->
      Rational.add acc (Rational.mul p (Rational.of_int (Instance.size inst))))
    t.worlds Rational.zero

let size_distribution t =
  let tbl = Hashtbl.create 16 in
  IMap.iter
    (fun inst p ->
      let n = Instance.size inst in
      let prev = Option.value (Hashtbl.find_opt tbl n) ~default:Rational.zero in
      Hashtbl.replace tbl n (Rational.add prev p))
    t.worlds;
  Hashtbl.fold (fun n p acc -> (n, p) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let condition t pred =
  let mass = prob_event t pred in
  if Rational.is_zero mass then
    invalid_arg "Finite_pdb.condition: conditioning on a null event"
  else begin
    let m =
      IMap.fold
        (fun inst p acc ->
          if pred inst then IMap.add inst (Rational.div p mass) acc else acc)
        t.worlds IMap.empty
    in
    { worlds = m }
  end

let map v t =
  let m =
    IMap.fold
      (fun inst p acc ->
        let image = v inst in
        let prev = Option.value (IMap.find_opt image acc) ~default:Rational.zero in
        IMap.add image (Rational.add prev p) acc)
      t.worlds IMap.empty
  in
  { worlds = m }

let apply_fo_view defs t =
  let view inst =
    List.fold_left
      (fun acc (rname, phi) ->
        let _, tuples = Fo_eval.answers inst phi in
        Tuple.Set.fold
          (fun tup acc -> Instance.add (Fact.make_arr rname tup) acc)
          tuples acc)
      Instance.empty defs
  in
  map view t

let product a b =
  let entries =
    List.concat_map
      (fun (ia, pa) ->
        List.map
          (fun (ib, pb) ->
            (Instance.disjoint_union ia ib, Rational.mul pa pb))
          (worlds b))
      (worlds a)
  in
  create entries

let of_ti ti = create (List.of_seq (Ti_table.worlds ti))
let of_bid bid = create (List.of_seq (Bid_table.worlds bid))

let is_tuple_independent t =
  let fs = fact_universe t in
  if List.length fs > 15 then
    invalid_arg "Finite_pdb.is_tuple_independent: too many facts";
  let fs = Array.of_list fs in
  let n = Array.length fs in
  let marginals = Array.map (fun f -> prob_ef t f) fs in
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let joint =
      prob_event t (fun inst ->
          let all = ref true in
          for i = 0 to n - 1 do
            if mask land (1 lsl i) <> 0 && not (Instance.mem fs.(i) inst) then
              all := false
          done;
          !all)
    in
    let expected = ref Rational.one in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then
        expected := Rational.mul !expected marginals.(i)
    done;
    if not (Rational.equal joint !expected) then ok := false
  done;
  !ok

let sample t g =
  let ws = worlds t in
  let weights = Array.of_list (List.map (fun (_, p) -> Rational.to_float p) ws) in
  fst (List.nth ws (Prng.categorical g weights))

let equal_distribution a b =
  let keys =
    IMap.fold (fun k _ acc -> IMap.add k () acc) b.worlds
      (IMap.map (fun _ -> ()) a.worlds)
  in
  IMap.for_all
    (fun inst () -> Rational.equal (prob_of a inst) (prob_of b inst))
    keys

let to_string t =
  String.concat "\n"
    (List.map
       (fun (inst, p) ->
         Printf.sprintf "%s : %s" (Instance.to_string inst)
           (Rational.to_string p))
       (worlds t))

let pp fmt t = Format.pp_print_string fmt (to_string t)
