lib/pdb/query_eval.ml: Array Dnf Finite_pdb Float Fo Fo_eval Instance Lineage List Printf Prng Prob Rational Safe_plan Seq Stdlib String Ti_table Tuple Value Wmc
