lib/pdb/bid_table.mli: Fact Fo Format Instance Prng Rational Schema Seq Ti_table
