lib/pdb/finite_pdb.mli: Bid_table Fact Fo Format Instance Prng Rational Ti_table
