lib/pdb/query_eval.mli: Fact Finite_pdb Fo Interval Prob Rational Ti_table Tuple
