lib/pdb/ti_table.mli: Fact Format Instance Prng Rational Schema Seq Value
