lib/pdb/ti_table.ml: Array Fact Format Instance List Option Printf Prng Rational Schema Seq String
