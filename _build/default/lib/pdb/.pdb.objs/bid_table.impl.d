lib/pdb/bid_table.ml: Array Fact Fo Format Hashtbl Instance List Map Option Printf Prng Rational Seq String Ti_table Value
