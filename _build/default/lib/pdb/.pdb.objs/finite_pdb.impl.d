lib/pdb/finite_pdb.ml: Array Bid_table Fact Fo_eval Format Hashtbl Instance List Map Option Printf Prng Rational String Ti_table Tuple
