type t = float (* the logarithm; neg_infinity encodes 0 *)

let zero = neg_infinity
let one = 0.0

let of_float x =
  if x < 0.0 || Float.is_nan x then invalid_arg "Log_domain.of_float"
  else log x

let of_log l = l
let to_log l = l
let to_float l = exp l

let mul a b = a +. b

let div a b =
  if b = neg_infinity then raise Division_by_zero else a -. b

(* logsumexp with the max factored out. *)
let add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else begin
    let m = Float.max a b and n = Float.min a b in
    m +. log1p (exp (n -. m))
  end

let sub a b =
  if b = neg_infinity then a
  else if b > a then invalid_arg "Log_domain.sub: negative result"
  else if a = b then neg_infinity
  else a +. log1p (-.exp (b -. a))

let pow a k = a *. k

let compare = Float.compare
let equal (a : t) b = a = b
let is_zero l = l = neg_infinity

let one_minus p =
  if p > 0.0 then invalid_arg "Log_domain.one_minus: argument above 1"
  else if p = neg_infinity then one
  else log1p (-.exp p)

let product_compl ps =
  List.fold_left
    (fun acc p ->
      if p < 0.0 || p > 1.0 || Float.is_nan p then
        invalid_arg "Log_domain.product_compl"
      else acc +. log1p (-.p))
    one ps

let pp fmt l = Format.fprintf fmt "exp(%.17g)" l
