(* Outward-rounded float intervals.  OCaml gives no access to the FPU
   rounding mode, so we widen every result by one ulp on each side via
   Float.pred/Float.succ; this over-approximates directed rounding and
   keeps the enclosure property. *)

type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.make"
  else { lo; hi }

let point x = make x x

let zero = point 0.0
let one = point 1.0

let lo x = x.lo
let hi x = x.hi
let width x = x.hi -. x.lo
let mid x = if x.lo = x.hi then x.lo else 0.5 *. (x.lo +. x.hi)

(* Unconditional one-ulp widening: cheap, and always sound. *)
let down x = Float.pred x
let up x = Float.succ x

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  {
    lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
    hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
  }

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then raise Division_by_zero
  else begin
    let p1 = a.lo /. b.lo and p2 = a.lo /. b.hi in
    let p3 = a.hi /. b.lo and p4 = a.hi /. b.hi in
    {
      lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
      hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
    }
  end

let compl x = sub one x

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let contains x v = x.lo <= v && v <= x.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let clamp01 x =
  match intersect x { lo = 0.0; hi = 1.0 } with
  | Some r -> r
  | None -> if x.hi < 0.0 then zero else one

let equal a b = a.lo = b.lo && a.hi = b.hi
let compare_mid a b = Float.compare (mid a) (mid b)

let pp fmt x = Format.fprintf fmt "[%.17g, %.17g]" x.lo x.hi
