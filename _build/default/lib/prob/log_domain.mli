(** Nonnegative reals represented by their natural logarithm.

    Useful for the infinite products [prod (1 - p_f)] of the
    tuple-independent construction, whose values underflow ordinary floats
    long before the mathematics degenerates. *)

type t
(** Invariant: the payload is [log x] for some [x >= 0]; [neg_infinity]
    represents [0]. *)

val zero : t
val one : t

val of_float : float -> t
(** @raise Invalid_argument on negative input. *)

val of_log : float -> t
(** Wrap a value already in log space. *)

val to_float : t -> float
val to_log : t -> float

val mul : t -> t -> t
val div : t -> t -> t

val add : t -> t -> t
(** Log-sum-exp; numerically stable. *)

val sub : t -> t -> t
(** [sub a b] for [a >= b]; @raise Invalid_argument otherwise. *)

val pow : t -> float -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val pp : Format.formatter -> t -> unit

val one_minus : t -> t
(** [one_minus p] is [1 - p] computed via [log1p] for accuracy near 0
    and 1. @raise Invalid_argument if [p > 1]. *)

val product_compl : float list -> t
(** [product_compl ps] is [prod (1 - p)] over the list, computed entirely
    in log space with [log1p]; accurate even for thousands of tiny
    factors. @raise Invalid_argument if any [p] is outside [\[0, 1\]]. *)
