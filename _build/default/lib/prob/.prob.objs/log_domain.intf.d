lib/prob/log_domain.mli: Format
