lib/prob/interval.mli: Format
