lib/prob/interval.ml: Float Format
