lib/prob/prob.mli: Format Interval Rational Seq
