lib/prob/log_domain.ml: Float Format List
