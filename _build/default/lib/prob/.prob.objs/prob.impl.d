lib/prob/prob.ml: Float Format Interval List Printf Rational Seq
