(** Probability carriers.

    Every probabilistic computation in this project (world enumeration,
    weighted model counting, completions, the truncation approximation of
    Proposition 6.1) is written once against the {!CARRIER} signature and
    instantiated at three precisions:

    - {!Float_carrier} — fast IEEE doubles;
    - {!Rational_carrier} — exact arithmetic, letting the theorems of the
      paper be checked as identities;
    - {!Interval_carrier} — outward-rounded enclosures: machine-checked
      two-sided bounds at float speed.

    The signature is deliberately a field-with-order rather than a
    semiring: the inference algorithms need complements and conditioning
    (division). *)

module type CARRIER = sig
  type t

  val zero : t
  val one : t
  val of_rational : Rational.t -> t
  val of_float : float -> t

  val to_float : t -> float
  (** Best single-float view (midpoint for intervals). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  val div : t -> t -> t
  (** @raise Division_by_zero when the divisor is (or contains) zero. *)

  val compl : t -> t
  (** [compl p = 1 - p]. *)

  val compare : t -> t -> int
  (** For intervals this compares midpoints: a total preorder sufficient
      for sorting and thresholding heuristics. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val name : string
  (** Short human-readable carrier name, e.g. ["float"]. *)
end

module Float_carrier : CARRIER with type t = float
module Rational_carrier : CARRIER with type t = Rational.t
module Interval_carrier : CARRIER with type t = Interval.t

(** {1 Float utilities} *)

val kahan_sum : float list -> float
(** Compensated summation. *)

val kahan_sum_seq : float Seq.t -> float

val close : ?eps:float -> float -> float -> bool
(** [close a b] holds when [|a - b| <= eps] (default [1e-9]). *)

(** {1 Probability validation} *)

val check_probability_float : float -> float
(** Identity on [\[0,1\]]; @raise Invalid_argument otherwise. *)

val check_probability_rational : Rational.t -> Rational.t
