module type CARRIER = sig
  type t

  val zero : t
  val one : t
  val of_rational : Rational.t -> t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val compl : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val name : string
end

module Float_carrier = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_rational = Rational.to_float
  let of_float x = x
  let to_float x = x
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )

  let div a b = if b = 0.0 then raise Division_by_zero else a /. b

  let compl p = 1.0 -. p
  let compare = Float.compare
  let equal (a : t) b = a = b
  let pp fmt x = Format.fprintf fmt "%.12g" x
  let name = "float"
end

module Rational_carrier = struct
  type t = Rational.t

  let zero = Rational.zero
  let one = Rational.one
  let of_rational x = x
  let of_float = Rational.of_float_exn
  let to_float = Rational.to_float
  let add = Rational.add
  let sub = Rational.sub
  let mul = Rational.mul
  let div = Rational.div
  let compl = Rational.compl
  let compare = Rational.compare
  let equal = Rational.equal
  let pp = Rational.pp
  let name = "rational"
end

module Interval_carrier = struct
  type t = Interval.t

  let zero = Interval.zero
  let one = Interval.one

  let of_rational q =
    (* Bracket the exact rational between adjacent floats. *)
    let f = Rational.to_float q in
    Interval.make (Float.pred f) (Float.succ f)

  let of_float = Interval.point
  let to_float = Interval.mid
  let add = Interval.add
  let sub = Interval.sub
  let mul = Interval.mul
  let div = Interval.div
  let compl = Interval.compl
  let compare = Interval.compare_mid
  let equal = Interval.equal
  let pp = Interval.pp
  let name = "interval"
end

let kahan_sum_seq xs =
  let sum = ref 0.0 and c = ref 0.0 in
  Seq.iter
    (fun x ->
      let y = x -. !c in
      let t = !sum +. y in
      c := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let kahan_sum xs = kahan_sum_seq (List.to_seq xs)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_probability_float p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "probability out of range: %g" p)
  else p

let check_probability_rational p =
  if Rational.is_probability p then p
  else
    invalid_arg
      (Printf.sprintf "probability out of range: %s" (Rational.to_string p))
