(** Exact rational arithmetic over {!Bigint}.

    Values are always kept in canonical form: the denominator is positive
    and coprime to the numerator; zero is [0/1].  Exactness is what lets the
    probabilistic-database layers test measure-theoretic identities (e.g.
    the partition sum of the tuple-independent construction equals [1]) as
    equalities rather than float tolerances. *)

type t

(** {1 Constants and construction} *)

val zero : t
val one : t
val two : t
val minus_one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical form of [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val of_bigint : Bigint.t -> t

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal notation ["a.b"] (exact), each with
    an optional sign. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val of_float_exn : float -> t
(** Exact dyadic rational of a finite float.
    @raise Invalid_argument on NaN or infinities. *)

(** {1 Access} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val to_float : t -> float
(** Rounds via a quotient with 80 extra bits of precision; exact when
    representable. *)

val to_string : t -> string
(** ["a/b"], or just ["a"] when the denominator is [1]. *)

val to_decimal_string : ?digits:int -> t -> string
(** Decimal rendering truncated to [digits] (default 12) fractional
    digits. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Field operations} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val pow : t -> int -> t
(** [pow x k]; negative [k] inverts ([x] must then be nonzero). *)

val compl : t -> t
(** [compl p] is [1 - p]: the probability complement. *)

val sum : t list -> t
val product : t list -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

(** {1 Probability helpers} *)

val is_probability : t -> bool
(** [0 <= x <= 1]. *)

val clamp01 : t -> t

(** {1 Operators and printing} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
