(* Exact rationals in canonical form: positive denominator coprime to the
   numerator; zero is 0/1. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let make n d =
  if B.is_zero d then raise Division_by_zero
  else begin
    let n, d = if B.is_negative d then (B.neg n, B.neg d) else (n, d) in
    if B.is_zero n then { n = B.zero; d = B.one }
    else begin
      let g = B.gcd n d in
      if B.is_one g then { n; d } else { n = B.div n g; d = B.div d g }
    end
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let two = { n = B.two; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }
let half = { n = B.one; d = B.two }

let of_bigint n = { n; d = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints a b = make (B.of_int a) (B.of_int b)

let num x = x.n
let den x = x.d

let sign x = B.sign x.n
let is_zero x = B.is_zero x.n
let is_one x = B.is_one x.n && B.is_one x.d
let is_integer x = B.is_one x.d

let equal a b = B.equal a.n b.n && B.equal a.d b.d

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)

let hash x = Hashtbl.hash (B.hash x.n, B.hash x.d)

let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }

let add a b =
  if B.equal a.d b.d then make (B.add a.n b.n) a.d
  else make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)

let sub a b = add a (neg b)

let mul a b = make (B.mul a.n b.n) (B.mul a.d b.d)

let inv x =
  if is_zero x then raise Division_by_zero else make x.d x.n

let div a b = mul a (inv b)

let pow x k =
  if k >= 0 then { n = B.pow x.n k; d = B.pow x.d k }
  else begin
    let y = inv x in
    { n = B.pow y.n (-k); d = B.pow y.d (-k) }
  end

let compl p = sub one p

let sum xs = List.fold_left add zero xs
let product xs = List.fold_left mul one xs

let floor x = fst (B.ediv_rem x.n x.d)

let ceil x =
  let q, r = B.ediv_rem x.n x.d in
  if B.is_zero r then q else B.succ q

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_probability x = sign x >= 0 && compare x one <= 0

let clamp01 x = if sign x < 0 then zero else if compare x one > 0 then one else x

(* Conversion to float: compute (n * 2^80) / d as an integer, convert, and
   scale back down.  The 80 guard bits dominate double precision, so the
   result is the correctly rounded-to-nearest-or-adjacent double for all
   practically occurring magnitudes. *)
let guard_bits = 80

let to_float x =
  if is_zero x then 0.0
  else begin
    let q = B.div (B.shift_left x.n guard_bits) x.d in
    B.to_float q *. ldexp 1.0 (-guard_bits)
  end

let of_float_exn f =
  match classify_float f with
  | FP_nan | FP_infinite ->
    invalid_arg "Rational.of_float_exn: not finite"
  | FP_zero -> zero
  | FP_normal | FP_subnormal ->
    let m, e = frexp f in
    (* m * 2^53 is integral for any finite float. *)
    let mi = Int64.of_float (ldexp m 53) in
    let n = B.of_int (Int64.to_int mi) in
    let e = e - 53 in
    if e >= 0 then of_bigint (B.shift_left n e)
    else make n (B.shift_left B.one (-e))

let to_string x =
  if B.is_one x.d then B.to_string x.n
  else B.to_string x.n ^ "/" ^ B.to_string x.d

let to_decimal_string ?(digits = 12) x =
  let sgn = if sign x < 0 then "-" else "" in
  let x = abs x in
  let ip = floor x in
  let frac = sub x (of_bigint ip) in
  if is_zero frac then sgn ^ B.to_string ip
  else begin
    let scale = B.pow (B.of_int 10) digits in
    let scaled = floor (mul frac (of_bigint scale)) in
    let s = B.to_string scaled in
    let s = String.make (Stdlib.max 0 (digits - String.length s)) '0' ^ s in
    (* Trim trailing zeros but keep at least one fractional digit. *)
    let last = ref (String.length s) in
    while !last > 1 && s.[!last - 1] = '0' do decr last done;
    sgn ^ B.to_string ip ^ "." ^ String.sub s 0 !last
  end

let of_string_opt s =
  let parse_frac s =
    match String.index_opt s '/' with
    | Some i ->
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      (match (B.of_string_opt a, B.of_string_opt b) with
       | Some a, Some b when not (B.is_zero b) -> Some (make a b)
       | _ -> None)
    | None ->
      (match String.index_opt s '.' with
       | Some i ->
         let ip = String.sub s 0 i in
         let fp = String.sub s (i + 1) (String.length s - i - 1) in
         let neg = String.length ip > 0 && ip.[0] = '-' in
         if String.length fp = 0 then Option.map of_bigint (B.of_string_opt ip)
         else begin
           (* Count real digits of the fractional part (ignoring '_'). *)
           let fdigits = ref 0 and ok = ref true in
           String.iter
             (fun c ->
               match c with
               | '0' .. '9' -> incr fdigits
               | '_' -> ()
               | _ -> ok := false)
             fp;
           let ip = if ip = "" || ip = "-" || ip = "+" then ip ^ "0" else ip in
           match (B.of_string_opt ip, B.of_string_opt fp) with
           | Some i, Some f when !ok && !fdigits > 0 ->
             let scale = B.pow (B.of_int 10) !fdigits in
             let fr = make f scale in
             let iv = of_bigint i in
             Some (if neg then sub iv fr else add iv fr)
           | _ -> None
         end
       | None -> Option.map of_bigint (B.of_string_opt s))
  in
  parse_frac s

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Rational.of_string: %S" s)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt x = Format.pp_print_string fmt (to_string x)
