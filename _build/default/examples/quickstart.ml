(* Quickstart: build a finite tuple-independent PDB, query it exactly,
   then open its world with an infinite completion and query again.

   Run with:  dune exec examples/quickstart.exe *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

let () =
  (* 1. A tuple-independent PDB: each fact is an independent event. *)
  let ti =
    Ti_table.create
      [
        (Fact.make "Likes" [ i 1; i 2 ], q 9 10);
        (Fact.make "Likes" [ i 2; i 1 ], q 1 2);
        (Fact.make "Likes" [ i 2; i 3 ], q 3 4);
        (Fact.make "Friend" [ i 1 ], q 1 3);
        (Fact.make "Friend" [ i 3 ], q 2 3);
      ]
  in
  Printf.printf "The table:\n%s\n\n" (Ti_table.to_string ti);
  Printf.printf "Expected instance size: %s facts\n\n"
    (Rational.to_decimal_string (Ti_table.expected_instance_size ti));

  (* 2. Exact Boolean query answering (safe plan or lineage + BDD). *)
  let queries =
    [
      "exists x y. Likes(x, y)";
      "exists x. Friend(x) & (exists y. Likes(x, y))";
      "forall x. Friend(x) -> (exists y. Likes(y, x))";
    ]
  in
  List.iter
    (fun qs ->
      let p = Query_eval.boolean ti (parse qs) in
      Printf.printf "P[ %s ] = %s  (~%s)\n" qs (Rational.to_string p)
        (Rational.to_decimal_string ~digits:6 p))
    queries;

  (* 3. Marginal answer probabilities for a query with a free variable. *)
  print_newline ();
  List.iter
    (fun (tup, p) ->
      Printf.printf "P[ %s in answers of Friend(x) & exists y. Likes(x,y) ] = %s\n"
        (Tuple.to_string tup) (Rational.to_string p))
    (Query_eval.marginals ti (parse "Friend(x) & (exists y. Likes(x, y))"));

  (* 4. Open the world: unseen Friend-facts get geometrically decaying
     probabilities over the infinite universe 4, 5, 6, ... *)
  let completion =
    Completion.geometric_policy ~first:(q 1 4) ~ratio:Rational.half
      ~new_facts:(fun k -> Fact.make "Friend" [ i (4 + k) ])
      ti
  in
  print_newline ();
  let phi = parse "exists x. Friend(x)" in
  let closed = Query_eval.boolean ti phi in
  let opened = Completion.query_prob completion ~eps:0.001 phi in
  Printf.printf "P[ exists x. Friend(x) ]  closed world: %s\n"
    (Rational.to_decimal_string ~digits:6 closed);
  Printf.printf "P[ exists x. Friend(x) ]  open world:   %s  (+/- 0.001, %d facts used)\n"
    (Rational.to_decimal_string ~digits:6 opened.Approx_eval.estimate)
    opened.Approx_eval.n_used;

  (* A fact the closed world calls impossible. *)
  let phi = parse "Friend(7)" in
  let opened = Completion.query_prob completion ~eps:0.001 phi in
  Printf.printf "P[ Friend(7) ]            closed world: %s, open world: %s\n"
    (Rational.to_decimal_string (Query_eval.boolean ti phi))
    (Rational.to_decimal_string ~digits:6 opened.Approx_eval.estimate)
