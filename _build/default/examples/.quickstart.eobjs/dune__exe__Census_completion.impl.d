examples/census_completion.ml: Approx_eval Countable_ti Fact Fact_source Finite_pdb Fo_parse Instance List Printf Rational Seq Value
