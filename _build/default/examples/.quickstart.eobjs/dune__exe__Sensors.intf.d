examples/sensors.mli:
