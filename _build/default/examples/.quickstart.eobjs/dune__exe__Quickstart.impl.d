examples/quickstart.ml: Approx_eval Completion Fact Fo_parse List Printf Query_eval Rational Ti_table Tuple Value
