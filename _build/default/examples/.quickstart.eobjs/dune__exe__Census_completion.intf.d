examples/census_completion.mli:
