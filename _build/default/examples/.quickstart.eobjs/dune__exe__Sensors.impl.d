examples/sensors.ml: Approx_eval Completion Fact Fact_source Fo_parse Interval List Option Printf Query_eval Rational Ti_table Value
