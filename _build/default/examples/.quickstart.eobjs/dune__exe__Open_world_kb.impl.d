examples/open_world_kb.ml: Approx_eval Array Completion Fact Fact_source Fo_parse List Printf Query_eval Rational Seq Ti_table Value
