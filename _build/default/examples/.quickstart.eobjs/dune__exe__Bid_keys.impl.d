examples/bid_keys.ml: Array Countable_bid Fact Finite_pdb Float Fo_parse Instance List Option Printf Prng Query_eval Rational Sampler Seq Ti_table Value
