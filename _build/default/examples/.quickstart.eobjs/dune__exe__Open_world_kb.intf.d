examples/open_world_kb.mli:
