examples/bid_keys.mli:
