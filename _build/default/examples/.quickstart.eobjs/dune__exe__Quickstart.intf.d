examples/quickstart.mli:
