(* Example 5.7 of the paper, end to end.

   Universe {A, B, C, D} ∪ N; one binary relation R between names and
   positive integers.  The closed-world table:

       R    | P
       A 1  | 0.8
       B 1  | 0.4
       B 2  | 0.5
       C 3  | 0.9

   Open-world policy: every unspecified pair (x, i) gets probability
   2^-i (up to 4 facts with probability 2^-i for each i) — a convergent
   series, so Theorem 5.5 yields an independent-fact completion in which
   every finite Boolean combination of distinct facts is possible.

   Run with:  dune exec examples/open_world_kb.exe *)

let i n = Value.Int n
let s x = Value.Str x
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

let table =
  Ti_table.create
    [
      (Fact.make "R" [ s "A"; i 1 ], q 8 10);
      (Fact.make "R" [ s "B"; i 1 ], q 4 10);
      (Fact.make "R" [ s "B"; i 2 ], q 5 10);
      (Fact.make "R" [ s "C"; i 3 ], q 9 10);
    ]

let names = [| "A"; "B"; "C"; "D" |]

let news () =
  let orig = Fact.Set.of_list (Ti_table.support table) in
  let all =
    Seq.concat_map
      (fun idx ->
        let x = names.(idx mod 4) and iv = (idx / 4) + 1 in
        let f = Fact.make "R" [ s x; i iv ] in
        if Fact.Set.mem f orig then Seq.empty
        else Seq.return (f, Rational.pow Rational.half iv))
      (Seq.ints 0)
  in
  Fact_source.make ~name:"2^-i policy" ~enum:all
    ~tail:(fun n -> Some (8.0 *. (0.5 ** float_of_int (n / 4))))
    ()

let () =
  Printf.printf "Original closed-world table:\n%s\n\n" (Ti_table.to_string table);

  let c = Completion.complete_ti table (news ()) in

  print_endline "Closed vs open answers (eps = 0.005):";
  let compare_query qs =
    let phi = parse qs in
    let closed = Query_eval.boolean table phi in
    let opened = Completion.query_prob c ~eps:0.005 phi in
    Printf.printf "  %-52s closed %-8s open %s\n" qs
      (Rational.to_decimal_string ~digits:4 closed)
      (Rational.to_decimal_string ~digits:4 opened.Approx_eval.estimate)
  in
  compare_query "exists x. R(\"A\", x)";
  compare_query "exists x. R(\"D\", x)";
  compare_query "exists x y. R(\"A\", x) & R(\"A\", y) & x != y";
  compare_query "R(\"D\", 2) & R(\"A\", 2)";
  compare_query "forall x. R(\"B\", x) -> R(\"A\", x)";
  print_newline ();

  (* Marginals of individual new facts under the policy. *)
  print_endline "Policy marginals of a few unspecified facts:";
  List.iter
    (fun (x, iv) ->
      match Completion.marginal c (Fact.make "R" [ s x; i iv ]) with
      | Some p ->
        Printf.printf "  P[ R(%s, %d) ] = %s\n" x iv (Rational.to_string p)
      | None -> Printf.printf "  P[ R(%s, %d) ] not enumerated\n" x iv)
    [ ("D", 1); ("D", 2); ("A", 2); ("C", 4) ];
  print_newline ();

  (* The completion condition, exactly. *)
  Printf.printf
    "Completion condition gap (must be 0 by Theorem 5.5): %s\n"
    (Rational.to_string (Completion.completion_condition_gap c ~n:6));

  (* Budget vs truncation size: the n(eps) the engine picked. *)
  print_newline ();
  print_endline "Truncation sizes chosen by the approximation engine:";
  List.iter
    (fun eps ->
      let r = Completion.query_prob c ~eps (parse "exists x. R(\"D\", x)") in
      Printf.printf "  eps = %-8g -> n = %3d new facts, estimate %s\n" eps
        r.Approx_eval.n_used
        (Rational.to_decimal_string ~digits:5 r.Approx_eval.estimate))
    [ 0.1; 0.01; 0.001; 0.0001 ]
