(* The paper's introduction scenario: office temperature measurements.

   Unreliable sensors in two offices produce an uncertain database.  The
   closed-world reading declares every unseen measurement impossible; in
   particular a temperature in the unobserved gap (20.3-20.4 degrees in
   office 1) has probability exactly 0, and so does "office 1 is warmer
   than office 2" when all observed office-1 readings lie below all
   observed office-2 readings.  The open-world completion assigns unseen
   readings small, decaying positive probabilities, and both events become
   unlikely-but-possible, with nearer gaps more likely than distant ones.

   Temperatures are encoded in tenths of a degree (201 = 20.1 C).

   Run with:  dune exec examples/sensors.exe *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

(* Observed (noisy) readings: office 1 clusters at 20.1-20.2, office 2 at
   20.5-20.6. *)
let observed =
  Ti_table.create
    [
      (Fact.make "Temp" [ i 1; i 201 ], q 6 10);
      (Fact.make "Temp" [ i 1; i 202 ], q 5 10);
      (Fact.make "Temp" [ i 2; i 205 ], q 6 10);
      (Fact.make "Temp" [ i 2; i 206 ], q 5 10);
    ]

(* Open-world policy: unseen grid readings for both offices, with
   probability decaying geometrically in the distance to the observed
   cluster (the completion's convergent series). *)
let news () =
  let candidates =
    (* (office, tenth) pairs ordered by distance from the cluster *)
    [
      (1, 203, 3); (1, 200, 3); (2, 204, 3); (2, 207, 3);
      (1, 204, 4); (1, 199, 4); (2, 203, 4); (2, 208, 4);
      (1, 205, 5); (1, 198, 5); (2, 202, 5); (2, 209, 5);
      (1, 206, 6); (1, 197, 6); (2, 201, 6); (2, 210, 6);
    ]
  in
  Fact_source.of_list ~name:"sensor-open-world"
    (List.map
       (fun (o, t, d) ->
         (Fact.make "Temp" [ i o; i t ], Rational.pow Rational.half d))
       candidates)

let show_prob label p = Printf.printf "  %-52s %s\n" label p

let () =
  print_endline "Closed world (the finite TI PDB as given):";
  let show_closed ?note qs =
    let label = Printf.sprintf "P[ %s ]%s" qs (Option.value note ~default:"") in
    show_prob label
      (Rational.to_decimal_string ~digits:6 (Query_eval.boolean observed (parse qs)))
  in
  show_closed "Temp(1, 203)";
  show_closed "Temp(1, 199)";
  show_closed ~note:"  (office 1 warmer)" "Temp(1, 206) & Temp(2, 205)";
  print_newline ();

  print_endline "Open world (completion by independent facts, eps = 0.001):";
  let c = Completion.complete_ti observed (news ()) in
  let show_open ?note qs =
    let label = Printf.sprintf "P[ %s ]%s" qs (Option.value note ~default:"") in
    let r = Completion.query_prob c ~eps:0.001 (parse qs) in
    show_prob label
      (Printf.sprintf "%s  (certified in [%.6f, %.6f])"
         (Rational.to_decimal_string ~digits:6 r.Approx_eval.estimate)
         (Interval.lo r.Approx_eval.bounds)
         (Interval.hi r.Approx_eval.bounds))
  in
  show_open "Temp(1, 203)";
  show_open "Temp(1, 199)";
  show_open ~note:"  (office 1 warmer)" "Temp(1, 206) & Temp(2, 205)";
  print_newline ();

  (* The real quantified comparison: office 1 records a strictly higher
     reading than office 2 in the same world. *)
  print_endline "The quantified comparison query (built-in order atoms):";
  let warmer = "exists x y. Temp(1, x) & Temp(2, y) & x > y" in
  Printf.printf "  closed world: P[ %s ] = %s\n" warmer
    (Rational.to_decimal_string ~digits:6
       (Query_eval.boolean observed (parse warmer)));
  let r = Completion.query_prob c ~eps:0.001 (parse warmer) in
  Printf.printf "  open world:   P[ %s ] = %s\n" warmer
    (Rational.to_decimal_string ~digits:6 r.Approx_eval.estimate);
  print_newline ();

  print_endline
    "Monotonicity: a small gap (20.3) beats a distant reading (19.9), which\n\
     beats an extreme one (20.6 in office 1) - unlike the closed world,\n\
     where all three are equally 'impossible':";
  List.iter
    (fun t ->
      let r =
        Completion.query_prob c ~eps:0.0005
          (parse (Printf.sprintf "Temp(1, %d)" t))
      in
      Printf.printf "  P[ Temp(1, %d) ] = %s\n" t
        (Rational.to_decimal_string ~digits:6 r.Approx_eval.estimate))
    [ 203; 199; 206 ];

  (* The completion condition: conditioned on seeing only observed-grid
     facts, the open world restores the original probabilities exactly. *)
  print_newline ();
  Printf.printf
    "Completion condition (Thm 5.5): max world gap on conditioning = %s\n"
    (Rational.to_string (Completion.completion_condition_gap c ~n:8))
