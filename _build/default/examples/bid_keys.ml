(* Key constraints via block-independent-disjoint PDBs (Section 4.4).

   The usual application of BID PDBs is to enforce key constraints: if
   LivesIn(person, city) has key "person", all facts about one person form
   a block — mutually exclusive alternatives — while different persons are
   independent.  A tuple-independent table cannot express this: it happily
   assigns positive probability to a person living in two cities at once.

   The countable twist of the paper: infinitely many persons (blocks) with
   decaying block masses satisfy Theorem 4.15's convergence criterion, so
   the infinite BID PDB exists and is sampleable.

   Run with:  dune exec examples/bid_keys.exe *)

let i n = Value.Int n
let s x = Value.Str x
let q = Rational.of_ints

let cities = [| "aachen"; "berlin"; "cologne" |]

(* Block for person k: lives in one of three cities with probabilities
   proportional to 3:2:1, total mass 2^-(k) * 6/6 scaled so that block
   masses sum geometrically. *)
let person_block k =
  let scale = Rational.pow Rational.half (k + 1) in
  Countable_bid.block_finite
    ~id:(Printf.sprintf "person-%d" k)
    (List.mapi
       (fun ci w ->
         ( Fact.make "LivesIn" [ i k; s cities.(ci) ],
           Rational.mul scale (q w 6) ))
       [ 3; 2; 1 ])

let bid () =
  Countable_bid.create ~name:"residents"
    ~blocks:(Seq.map person_block (Seq.ints 0))
    ~tail:(fun n -> Some (Float.succ (0.5 ** float_of_int n)))
    ()

let () =
  let b = bid () in
  print_endline "A countable BID PDB: LivesIn(person, city) with key 'person'.";
  Printf.printf "Block masses decay geometrically; total expected size:\n";
  let lo, hi = Countable_bid.expected_size_bounds b ~n:40 in
  Printf.printf "  E(S) in [%.6f, %.6f]\n\n" lo hi;

  print_endline "Exact marginals (blocks are exclusive, so these sum to the";
  print_endline "block mass, not to 1):";
  List.iter
    (fun city ->
      match Countable_bid.marginal b (Fact.make "LivesIn" [ i 0; s city ]) with
      | Some p ->
        Printf.printf "  P[ LivesIn(0, %-8s) ] = %s\n" city (Rational.to_string p)
      | None -> ())
    (Array.to_list cities);
  print_newline ();

  (* Sampling respects the key exactly. *)
  let samples = 20_000 in
  let violations =
    Sampler.exclusivity_violations ~seed:1 ~samples
      (fun g -> Countable_bid.sample b g)
      (fun f ->
        match Fact.args f with
        | Value.Int k :: _ -> Some (string_of_int k)
        | _ -> None)
  in
  Printf.printf "Key violations in %d sampled worlds: %d (exclusivity is exact)\n"
    samples violations;

  (* Contrast: a TI table with the same marginals violates the key. *)
  let ti_same_marginals =
    Ti_table.create
      (List.map
         (fun city ->
           ( Fact.make "LivesIn" [ i 0; s city ],
             Option.get (Countable_bid.marginal b (Fact.make "LivesIn" [ i 0; s city ])) ))
         (Array.to_list cities))
  in
  let g = Prng.create ~seed:2 () in
  let ti_violations = ref 0 in
  for _ = 1 to samples do
    if Instance.size (Ti_table.sample ti_same_marginals g) > 1 then
      incr ti_violations
  done;
  Printf.printf
    "The TI table with identical marginals: %d violations (%.2f%%) - keys\n\
     need BID, not TI (Definition 4.11).\n\n"
    !ti_violations
    (100.0 *. float_of_int !ti_violations /. float_of_int samples);

  (* Cross-block independence, sampled. *)
  let gap =
    Sampler.independence_gap ~seed:3 ~samples
      (fun g -> Countable_bid.sample b g)
      (Fact.make "LivesIn" [ i 0; s "aachen" ])
      (Fact.make "LivesIn" [ i 1; s "berlin" ])
  in
  Printf.printf "Cross-person independence gap (sampled): %.5f (noise ~ %.5f)\n"
    gap
    (1.0 /. sqrt (float_of_int samples));

  (* Truncate to a finite BID table and query it exactly. *)
  let table = Countable_bid.truncate b ~n_blocks:4 ~alts_per_block:3 in
  let pdb = Finite_pdb.of_bid table in
  let phi =
    Fo_parse.parse_exn "exists x. LivesIn(x, \"aachen\") & !LivesIn(x, \"berlin\")"
  in
  Printf.printf
    "\nOn the 4-block truncation: P[ someone is in aachen (and per the key\n\
     not in berlin) ] = %s\n"
    (Rational.to_decimal_string ~digits:6 (Query_eval.boolean_finite pdb phi));
  Printf.printf "Worlds in the truncation: %d; partition sum = %s (exact)\n"
    (Finite_pdb.num_worlds pdb)
    (Rational.to_string
       (List.fold_left
          (fun acc (_, p) -> Rational.add acc p)
          Rational.zero (Finite_pdb.worlds pdb)))
