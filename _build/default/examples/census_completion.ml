(* Example 3.2 of the paper: probabilistic completions of an incomplete
   database.

   A census-style relation Person(FirstName, LastName, HeightBucket) has a
   record with a missing first name and another with a missing height.
   Completing each null with a distribution yields a probabilistic
   database: names from a frequency list plus a countable tail of unseen
   strings (a countable PDB), heights from a discretized bell curve over
   centimeter buckets (finite here; the paper's version is continuous —
   bucketing is our countable stand-in, documented in DESIGN.md).

   Run with:  dune exec examples/census_completion.exe *)

let i n = Value.Int n
let s x = Value.Str x
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

(* Completion of (⊥, Grohe, 183): known German first names with list
   frequencies, then unseen strings with geometrically decaying mass. *)
let name_source () =
  let known =
    [
      (Fact.make "Person" [ s "Martin"; s "Grohe"; i 183 ], q 35 100);
      (Fact.make "Person" [ s "Peter"; s "Grohe"; i 183 ], q 25 100);
      (Fact.make "Person" [ s "Hans"; s "Grohe"; i 183 ], q 15 100);
    ]
  in
  let unseen =
    Fact_source.geometric ~name:"unseen names" ~first:(q 1 8)
      ~ratio:Rational.half
      ~facts:(fun k ->
        (* enumerate strings aa, ab, ba, bb, aaa, ... as stand-ins for the
           countable set of strings not on the frequency list *)
        let sval =
          match List.of_seq (Seq.take 1 (Seq.drop (k + 3) (Value.enum_strings ()))) with
          | [ v ] -> v
          | _ -> assert false
        in
        Fact.make "Person" [ sval; s "Grohe"; i 183 ])
      ()
  in
  Fact_source.append_finite known unseen

(* Completion of (Peter, Lindner, ⊥): height buckets around 180cm with a
   discretized bell shape. *)
let height_pdb () =
  let weights =
    [ (170, 2); (175, 9); (180, 28); (185, 9); (190, 2) ]
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  Finite_pdb.create
    (List.map
       (fun (h, w) ->
         ( Instance.singleton (Fact.make "Person" [ s "Peter"; s "Lindner"; i h ]),
           q w total ))
       weights)

let () =
  print_endline "Null completion 1: (?, Grohe, 183) over a countable name space";
  let src = name_source () in
  let cti = Countable_ti.create src in
  let lo, hi = Countable_ti.expected_size_bounds cti ~n:40 in
  Printf.printf "  total probability mass in [%.6f, %.6f] (should be 1)\n" lo hi;

  (* Chance the name is one we had on the list: *)
  let r =
    Approx_eval.boolean src ~eps:0.001
      (parse
         "Person(\"Martin\", \"Grohe\", 183) | Person(\"Peter\", \"Grohe\", \
          183) | Person(\"Hans\", \"Grohe\", 183)")
  in
  Printf.printf "  P[ name from the frequency list ] = %s (+/- 0.001)\n"
    (Rational.to_decimal_string ~digits:4 r.Approx_eval.estimate);
  let r =
    Approx_eval.boolean src ~eps:0.001
      (parse "exists x. Person(x, \"Grohe\", 183)")
  in
  Printf.printf "  P[ some completion exists ]       = %s (+/- 0.001)\n"
    (Rational.to_decimal_string ~digits:4 r.Approx_eval.estimate);
  print_newline ();

  print_endline "Null completion 2: (Peter, Lindner, ?) over height buckets";
  let hp = height_pdb () in
  Printf.printf "  E[#facts] = %s (one record, fully correlated)\n"
    (Rational.to_string (Finite_pdb.expected_size hp));
  List.iter
    (fun h ->
      Printf.printf "  P[ height %d ] = %s\n" h
        (Rational.to_decimal_string ~digits:4
           (Finite_pdb.prob_ef hp (Fact.make "Person" [ s "Peter"; s "Lindner"; i h ]))))
    [ 175; 180; 185 ];
  print_newline ();

  (* Independent nulls: the joint completion is the product PDB. *)
  print_endline "Joint completion (independent nulls): product distribution";
  let name_trunc = Fact_source.truncate src 8 in
  let joint = Finite_pdb.product (Finite_pdb.of_ti name_trunc) hp in
  Printf.printf "  %d joint worlds; P[ Martin & 180cm ] = %s\n"
    (Finite_pdb.num_worlds joint)
    (Rational.to_decimal_string ~digits:4
       (Finite_pdb.prob_event joint (fun w ->
            Instance.mem (Fact.make "Person" [ s "Martin"; s "Grohe"; i 183 ]) w
            && Instance.mem (Fact.make "Person" [ s "Peter"; s "Lindner"; i 180 ]) w)));
  let independent_check =
    Rational.mul
      (Finite_pdb.prob_ef joint (Fact.make "Person" [ s "Martin"; s "Grohe"; i 183 ]))
      (Finite_pdb.prob_ef joint (Fact.make "Person" [ s "Peter"; s "Lindner"; i 180 ]))
  in
  Printf.printf "  product of marginals           = %s (equal: independence)\n"
    (Rational.to_decimal_string ~digits:4 independent_check)
