(* End-to-end integration tests: whole-paper scenarios wired through every
   layer — relational substrate, logic, finite engines, the countable TI
   construction, completions and the truncation approximation. *)

let i n = Value.Int n
let s x = Value.Str x
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

(* ------------------------------------------------------------------ *)
(* Scenario 1: the paper's Example 5.7, end to end. *)
(* ------------------------------------------------------------------ *)

let ex57_ti =
  Ti_table.create
    [
      (Fact.make "R" [ s "A"; i 1 ], q 8 10);
      (Fact.make "R" [ s "B"; i 1 ], q 4 10);
      (Fact.make "R" [ s "B"; i 2 ], q 5 10);
      (Fact.make "R" [ s "C"; i 3 ], q 9 10);
    ]

let names = [| "A"; "B"; "C"; "D" |]

let ex57_news () =
  let orig = Fact.Set.of_list (Ti_table.support ex57_ti) in
  let all =
    Seq.concat_map
      (fun idx ->
        let x = names.(idx mod 4) and iv = (idx / 4) + 1 in
        let f = Fact.make "R" [ s x; i iv ] in
        if Fact.Set.mem f orig then Seq.empty
        else Seq.return (f, Rational.pow Rational.half iv))
      (Seq.ints 0)
  in
  Fact_source.make ~name:"ex57" ~enum:all
    ~tail:(fun n -> Some (8.0 *. (0.5 ** float_of_int (n / 4))))
    ()

let test_ex57_closed_world_quirks () =
  (* Under the CWA, D never occurs and two facts R(A, .) can't coexist
     (only one exists at all). *)
  check_q "D never occurs" Rational.zero
    (Query_eval.boolean ex57_ti (parse "exists x. R(\"D\", x)"));
  check_q "two A-facts impossible" Rational.zero
    (Query_eval.boolean ex57_ti
       (parse "exists x y. R(\"A\", x) & R(\"A\", y) & x != y"))

let test_ex57_open_world_positivity () =
  (* In the completion, every finite Boolean combination of distinct new
     facts has positive probability (closing claim of Example 5.7). *)
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  let queries =
    [
      "exists x. R(\"D\", x)";
      "exists x y. R(\"A\", x) & R(\"A\", y) & x != y";
      "R(\"D\", 2) & R(\"A\", 2)";
      "R(\"D\", 1) & !R(\"D\", 2)";
    ]
  in
  List.iter
    (fun qs ->
      let r = Completion.query_prob c ~eps:0.01 (parse qs) in
      Alcotest.(check bool) (qs ^ " positive") true
        (Rational.sign r.Approx_eval.estimate > 0))
    queries

let test_ex57_monotone_in_eps () =
  (* Tighter eps uses at least as many facts and the certified bounds
     shrink. *)
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  let phi = parse "exists x. R(\"D\", x)" in
  let r1 = Completion.query_prob c ~eps:0.2 phi in
  let r2 = Completion.query_prob c ~eps:0.01 phi in
  Alcotest.(check bool) "more facts" true
    (r2.Approx_eval.n_used >= r1.Approx_eval.n_used);
  Alcotest.(check bool) "narrower bounds" true
    (Interval.width r2.Approx_eval.bounds <= Interval.width r1.Approx_eval.bounds)

(* ------------------------------------------------------------------ *)
(* Scenario 2: sensors (the paper's introduction). *)
(* ------------------------------------------------------------------ *)

(* Temperatures in two offices, measured in tenths of a degree on a
   discrete grid.  The closed-world PDB has a gap: no reading between
   20.2 and 20.5 for office 1.  Facts: Temp(office, tenth-degrees). *)
let sensor_ti =
  Ti_table.create
    [
      (Fact.make "Temp" [ i 1; i 201 ], q 1 2);
      (Fact.make "Temp" [ i 1; i 202 ], q 1 2);
      (Fact.make "Temp" [ i 2; i 205 ], q 1 2);
      (Fact.make "Temp" [ i 2; i 206 ], q 1 2);
    ]

let sensor_news () =
  (* Open world: unseen readings 20.3, 20.4 (and a widening grid) get
     geometrically decaying probabilities for both offices. *)
  let grid = [| 203; 204; 207; 208; 199; 200 |] in
  let entries =
    List.concat
      (List.init (Array.length grid) (fun gi ->
           List.map
             (fun office ->
               ( Fact.make "Temp" [ i office; i grid.(gi) ],
                 Rational.pow Rational.half (gi + 3) ))
             [ 1; 2 ]))
  in
  Fact_source.of_list ~name:"sensor-news" entries

let test_sensor_gap () =
  (* Closed world: a reading of 20.3 in office 1 is "impossible". *)
  check_q "gap impossible closed" Rational.zero
    (Query_eval.boolean sensor_ti (parse "Temp(1, 203)"));
  let c = Completion.complete_ti sensor_ti (sensor_news ()) in
  let r = Completion.query_prob c ~eps:0.01 (parse "Temp(1, 203)") in
  Alcotest.(check bool) "gap possible open" true
    (Rational.sign r.Approx_eval.estimate > 0);
  (* And closer gaps are more likely than distant ones (the intro's
     monotonicity desideratum). *)
  let p203 = (Completion.query_prob c ~eps:0.001 (parse "Temp(1, 203)")).Approx_eval.estimate in
  let p199 = (Completion.query_prob c ~eps:0.001 (parse "Temp(1, 199)")).Approx_eval.estimate in
  Alcotest.(check bool) "nearer reading more likely" true
    Rational.(p199 < p203)

let test_sensor_comparison_query () =
  (* "Office 1 warmer than office 2": impossible closed-world (all office-1
     readings are below all office-2 readings), positive open-world. *)
  let phi = parse "exists x y. Temp(1, x) & Temp(2, y) & (exists z. Gt(x, y, z))" in
  ignore phi;
  (* Without arithmetic atoms, express "warmer" on the finite grid by
     enumerating pairs: 206 > 205 etc.  Use a helper view instead: just
     check a representative pair. *)
  let closed =
    Query_eval.boolean sensor_ti (parse "Temp(1, 207) & Temp(2, 205)")
  in
  check_q "closed zero" Rational.zero closed;
  let c = Completion.complete_ti sensor_ti (sensor_news ()) in
  let r = Completion.query_prob c ~eps:0.01 (parse "Temp(1, 207) & Temp(2, 205)") in
  Alcotest.(check bool) "open positive" true
    (Rational.sign r.Approx_eval.estimate > 0)

(* ------------------------------------------------------------------ *)
(* Scenario 3: census completion (Example 3.2, countable case). *)
(* ------------------------------------------------------------------ *)

let test_census_name_completion () =
  (* A record with a missing first name: complete over a countable
     universe of strings.  Known names get frequencies; unseen strings
     share a geometric tail — a countable PDB, as in Example 3.2. *)
  let known =
    [
      (Fact.make "Person" [ s "Martin"; s "Grohe" ], q 45 100);
      (Fact.make "Person" [ s "Peter"; s "Grohe" ], q 30 100);
    ]
  in
  let unseen =
    Fact_source.geometric ~name:"unseen-names" ~first:(q 1 8)
      ~ratio:Rational.half
      ~facts:(fun k -> Fact.make "Person" [ s (Printf.sprintf "name%d" k); s "Grohe" ])
      ()
  in
  let src = Fact_source.append_finite known unseen in
  let cti = Countable_ti.create src in
  (* total mass = 0.75 + 0.25 = 1: expected size 1 record *)
  let lo, hi = Countable_ti.expected_size_bounds cti ~n:40 in
  Alcotest.(check bool) "expected one name" true (lo <= 1.0 && 1.0 <= hi && hi -. lo < 1e-6);
  (* approximate query: some unseen name occurs *)
  let r =
    Approx_eval.boolean src ~eps:0.01
      (parse "exists x. Person(x, \"Grohe\")")
  in
  Alcotest.(check bool) "someone named" true
    (Rational.to_float r.Approx_eval.estimate > 0.5)

(* ------------------------------------------------------------------ *)
(* Scenario 4: engines against the approximation on a countable PDB. *)
(* ------------------------------------------------------------------ *)

let test_truncation_vs_rich_truncation () =
  (* Evaluating with a much deeper truncation refines the answer within
     the coarser run's certified bounds. *)
  let src =
    Fact_source.telescoping ~mass:Rational.half
      ~facts:(fun k -> Fact.make "R" [ i k ])
      ()
  in
  let phi = parse "exists x. R(x)" in
  let coarse = Approx_eval.boolean src ~eps:0.2 phi in
  let fine = Approx_eval.boolean src ~eps:0.002 phi in
  Alcotest.(check bool) "fine estimate within coarse certified bounds" true
    (Interval.contains coarse.Approx_eval.bounds
       (Rational.to_float fine.Approx_eval.estimate));
  (* Monte Carlo over the sampled countable PDB agrees with the estimate *)
  let cti = Countable_ti.create src in
  let est =
    Sampler.estimate_event ~seed:17 ~samples:20_000
      (fun g -> Countable_ti.sample cti g)
      (fun w -> not (Instance.is_empty w))
  in
  Alcotest.(check bool) "sampled vs approximated" true
    (Float.abs (est -. Rational.to_float fine.Approx_eval.estimate) < 0.02)

let test_bid_vs_ti_special_case () =
  (* A countable BID PDB with singleton blocks is the countable TI PDB:
     samplers agree in distribution on a marginal. *)
  let p k = Rational.pow Rational.half (k + 1) in
  let blocks =
    Seq.map
      (fun k ->
        Countable_bid.block_finite
          ~id:(Printf.sprintf "b%d" k)
          [ (Fact.make "R" [ i k ], p k) ])
      (Seq.ints 0)
  in
  let cb =
    Countable_bid.create ~name:"singletons" ~blocks
      ~tail:(fun n -> Some (Float.succ (0.5 ** float_of_int n)))
      ()
  in
  let src =
    Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
      ~facts:(fun k -> Fact.make "R" [ i k ])
      ()
  in
  let ct = Countable_ti.create src in
  let f = Fact.make "R" [ i 1 ] in
  let m_bid =
    Sampler.estimate_marginal ~seed:23 ~samples:30_000
      (fun g -> Countable_bid.sample cb g)
      f
  in
  let m_ti =
    Sampler.estimate_marginal ~seed:29 ~samples:30_000
      (fun g -> Countable_ti.sample ct g)
      f
  in
  Alcotest.(check bool) "samplers agree" true (Float.abs (m_bid -. m_ti) < 0.015);
  Alcotest.(check bool) "near exact 1/4" true (Float.abs (m_ti -. 0.25) < 0.01)

(* ------------------------------------------------------------------ *)
(* Scenario 5: Proposition 4.9's shape — FO views of TI PDBs have
   bounded answers, Example 3.3 does not. *)
(* ------------------------------------------------------------------ *)

let test_definability_gap_shape () =
  (* For a TI world C and a single-free-variable view phi, the answer size
     is bounded by |adom(C)| + #constants (Fact 2.1).  Example 3.3's
     instance sizes outgrow any such bound relative to their
     probability-weighted budget. *)
  let src =
    Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
      ~facts:(fun k -> Fact.make "E" [ i k; i (k + 1) ])
      ()
  in
  let cti = Countable_ti.create src in
  let g = Prng.create ~seed:31 () in
  for _ = 1 to 200 do
    let w = Countable_ti.sample cti g in
    let _, answers = Fo_eval.answers w (parse "exists y. E(x, y)") in
    if Tuple.Set.cardinal answers > 2 * Instance.size w then
      Alcotest.fail "FO view exceeded the Fact 2.1 bound"
  done;
  (* Example 3.3 truncated expectation passes any fixed bound. *)
  Alcotest.(check bool) "E(S) truncations unbounded" true
    (Rational.to_float (Size_dist.example_3_3_expected_size_prefix 20) > 1000.0)

let () =
  Alcotest.run "integration"
    [
      ( "example-5.7",
        [
          Alcotest.test_case "closed world quirks" `Quick
            test_ex57_closed_world_quirks;
          Alcotest.test_case "open world positivity" `Quick
            test_ex57_open_world_positivity;
          Alcotest.test_case "monotone in eps" `Quick test_ex57_monotone_in_eps;
        ] );
      ( "sensors",
        [
          Alcotest.test_case "gap readings" `Quick test_sensor_gap;
          Alcotest.test_case "comparison query" `Quick test_sensor_comparison_query;
        ] );
      ( "census",
        [ Alcotest.test_case "name completion" `Quick test_census_name_completion ] );
      ( "cross-engine",
        [
          Alcotest.test_case "truncation refinement" `Slow
            test_truncation_vs_rich_truncation;
          Alcotest.test_case "bid = ti on singletons" `Slow
            test_bid_vs_ti_special_case;
        ] );
      ( "definability",
        [ Alcotest.test_case "prop 4.9 shape" `Quick test_definability_gap_shape ] );
    ]
