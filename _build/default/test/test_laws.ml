(* Cross-cutting law-based property tests: algebraic identities that tie
   several layers together, each a theorem-flavored invariant.

   - probability complement: P(!Q) = 1 - P(Q), exactly;
   - quantifier duality: forall x phi  <->  !(exists x. !phi);
   - monotonicity of positive queries in the fact probabilities;
   - open-world dominance: completing a PDB can only increase the
     probability of a positive existential query;
   - BDD boolean-algebra laws on random expressions. *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

(* ------------------------------------------------------------------ *)
(* Generators *)
(* ------------------------------------------------------------------ *)

let arb_ti =
  let open QCheck.Gen in
  let gen =
    let* nr = int_range 1 3 in
    let* ns = int_range 1 3 in
    let* probs = list_repeat (nr + ns) (map (fun k -> q k 10) (int_range 1 9)) in
    let facts =
      List.init nr (fun k -> Fact.make "R" [ i k ])
      @ List.init ns (fun k -> Fact.make "S" [ i k ])
    in
    return (Ti_table.create (List.combine facts probs))
  in
  QCheck.make ~print:Ti_table.to_string gen

let arb_sentence =
  QCheck.oneofl
    (List.map parse
       [
         "exists x. R(x)";
         "exists x. R(x) & S(x)";
         "exists x y. R(x) & S(y)";
         "forall x. R(x) -> S(x)";
         "exists x. R(x) | S(x)";
         "exists x y. R(x) & S(y) & x != y";
         "exists x. R(x) & x >= 1";
       ])

let arb_positive_existential =
  QCheck.oneofl
    (List.map parse
       [
         "exists x. R(x)";
         "exists x. R(x) & S(x)";
         "exists x y. R(x) & S(y)";
         "exists x. R(x) | S(x)";
       ])

(* ------------------------------------------------------------------ *)
(* Laws *)
(* ------------------------------------------------------------------ *)

let prop_complement =
  QCheck.Test.make ~name:"P(!Q) = 1 - P(Q) exactly" ~count:150
    QCheck.(pair arb_ti arb_sentence)
    (fun (ti, phi) ->
      Rational.equal
        (Query_eval.boolean ti (Fo.Not phi))
        (Rational.compl (Query_eval.boolean ti phi)))

let prop_quantifier_duality =
  QCheck.Test.make ~name:"forall = not exists not (probabilistically)"
    ~count:100 arb_ti (fun ti ->
      let a = Query_eval.boolean ti (parse "forall x. R(x) -> S(x)") in
      let b =
        Query_eval.boolean ti (parse "!(exists x. R(x) & !S(x))")
      in
      Rational.equal a b)

let prop_or_inclusion_exclusion =
  QCheck.Test.make ~name:"P(A|B) = P(A)+P(B)-P(A&B) exactly" ~count:100
    arb_ti (fun ti ->
      let p s = Query_eval.boolean ti (parse s) in
      Rational.equal
        (p "(exists x. R(x)) | (exists x. S(x))")
        (Rational.sub
           (Rational.add (p "exists x. R(x)") (p "exists x. S(x)"))
           (p "(exists x. R(x)) & (exists x. S(x))")))

let prop_monotone_in_probabilities =
  QCheck.Test.make ~name:"raising a marginal raises positive queries"
    ~count:100
    QCheck.(triple arb_ti arb_positive_existential (int_range 0 2))
    (fun (ti, phi, which) ->
      match Ti_table.facts ti with
      | [] -> true
      | facts ->
        let f, p = List.nth facts (which mod List.length facts) in
        let bumped =
          Ti_table.add ti f
            (Rational.add p (Rational.div (Rational.compl p) Rational.two))
        in
        Rational.compare (Query_eval.boolean ti phi)
          (Query_eval.boolean bumped phi)
        <= 0)

let prop_adding_fact_monotone =
  QCheck.Test.make ~name:"adding a fact raises positive queries" ~count:100
    QCheck.(pair arb_ti arb_positive_existential)
    (fun (ti, phi) ->
      let extended = Ti_table.add ti (Fact.make "R" [ i 7 ]) (q 1 3) in
      Rational.compare (Query_eval.boolean ti phi)
        (Query_eval.boolean extended phi)
      <= 0)

let prop_open_world_dominates =
  QCheck.Test.make ~name:"completion raises positive existential queries"
    ~count:60
    QCheck.(pair arb_ti arb_positive_existential)
    (fun (ti, phi) ->
      let c =
        Completion.openpdb_lambda ~lambda:(q 1 6)
          ~new_facts:[ Fact.make "R" [ i 8 ]; Fact.make "S" [ i 8 ] ]
          ti
      in
      let closed = Query_eval.boolean ti phi in
      let opened = (Completion.query_prob c ~eps:0.01 phi).Approx_eval.estimate in
      Rational.compare closed opened <= 0)

let prop_cc_on_random_tables =
  QCheck.Test.make ~name:"(CC) exact for random tables and policies" ~count:40
    QCheck.(pair arb_ti (int_range 1 9))
    (fun (ti, k) ->
      let c =
        Completion.openpdb_lambda ~lambda:(q k 10)
          ~new_facts:[ Fact.make "N" [ i 0 ]; Fact.make "N" [ i 1 ] ]
          ti
      in
      Rational.is_zero (Completion.completion_condition_gap c ~n:2))

(* BDD boolean-algebra laws on random expressions. *)
let arb_expr =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then oneof [ return Bool_expr.tru; map Bool_expr.var (int_range 0 4) ]
    else
      frequency
        [
          (2, map Bool_expr.var (int_range 0 4));
          (2, map Bool_expr.neg (gen (n - 1)));
          (3, map2 Bool_expr.and2 (gen (n / 2)) (gen (n / 2)));
          (3, map2 Bool_expr.or2 (gen (n / 2)) (gen (n / 2)));
        ]
  in
  QCheck.make ~print:Bool_expr.to_string (gen 5)

let prop_bdd_de_morgan =
  QCheck.Test.make ~name:"bdd de morgan" ~count:200
    QCheck.(pair arb_expr arb_expr)
    (fun (a, b) ->
      let m = Bdd.manager () in
      let da = Bdd.of_expr m a and db = Bdd.of_expr m b in
      Bdd.equal
        (Bdd.neg m (Bdd.conj m da db))
        (Bdd.disj m (Bdd.neg m da) (Bdd.neg m db)))

let prop_bdd_shannon =
  QCheck.Test.make ~name:"bdd shannon expansion" ~count:200
    QCheck.(pair arb_expr (int_range 0 4))
    (fun (a, v) ->
      let m = Bdd.manager () in
      let d = Bdd.of_expr m a in
      let hi = Bdd.restrict m d v true and lo = Bdd.restrict m d v false in
      let x = Bdd.var m v in
      Bdd.equal d (Bdd.disj m (Bdd.conj m x hi) (Bdd.conj m (Bdd.neg m x) lo)))

let prop_bdd_xor_self =
  QCheck.Test.make ~name:"bdd a xor a = false" ~count:200 arb_expr (fun a ->
      let m = Bdd.manager () in
      let d = Bdd.of_expr m a in
      Bdd.is_fls (Bdd.xor m d d))

let prop_wmc_total_probability =
  QCheck.Test.make ~name:"wmc law of total probability over one variable"
    ~count:150 arb_expr (fun a ->
      (* P(f) = p_v P(f|v) + (1-p_v) P(f|!v) for any v, via restrict *)
      let m = Bdd.manager () in
      let d = Bdd.of_expr m a in
      let weight k = 0.1 +. (0.15 *. float_of_int k) in
      let module W = Wmc.Make (Prob.Float_carrier) in
      let v = 2 in
      let p = W.probability ~weight d in
      let p_hi = W.probability ~weight (Bdd.restrict m d v true) in
      let p_lo = W.probability ~weight (Bdd.restrict m d v false) in
      Prob.close ~eps:1e-9 p ((weight v *. p_hi) +. ((1.0 -. weight v) *. p_lo)))

(* Countable-original completion (Remark 5.6). *)
let test_complete_countable_ti () =
  let orig =
    Countable_ti.create
      (Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
         ~facts:(fun k -> Fact.make "R" [ i k ])
         ())
  in
  let news =
    Fact_source.geometric ~first:(q 1 4) ~ratio:Rational.half
      ~facts:(fun k -> Fact.make "New" [ i k ])
      ()
  in
  let completed = Completion.complete_countable_ti orig news in
  (* marginals from both families survive *)
  (match Countable_ti.marginal completed (Fact.make "R" [ i 1 ]) with
   | Some p -> Alcotest.(check string) "orig marginal" "1/4" (Rational.to_string p)
   | None -> Alcotest.fail "orig marginal expected");
  (match Countable_ti.marginal completed (Fact.make "New" [ i 0 ]) with
   | Some p -> Alcotest.(check string) "new marginal" "1/4" (Rational.to_string p)
   | None -> Alcotest.fail "new marginal expected");
  (* expected size = 1 + 1/2 *)
  let lo, hi = Countable_ti.expected_size_bounds completed ~n:60 in
  Alcotest.(check bool) "E(S) = 3/2" true
    (lo <= 1.5 && 1.5 <= hi && hi -. lo < 1e-6);
  (* still a valid countable TI PDB: partition identity *)
  Alcotest.(check string) "partition" "1"
    (Rational.to_string (Countable_ti.partition_prefix_sum completed ~n:8));
  (* divergent news rejected *)
  Alcotest.(check bool) "divergent rejected" true
    (match
       Completion.complete_countable_ti orig
         (Fact_source.divergent_harmonic ~scale:Rational.one
            ~facts:(fun k -> Fact.make "H" [ i k ])
            ())
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let () =
  Alcotest.run "laws"
    [
      ( "countable-completion",
        [ Alcotest.test_case "remark 5.6" `Quick test_complete_countable_ti ] );
      ( "probability-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_complement;
            prop_quantifier_duality;
            prop_or_inclusion_exclusion;
            prop_monotone_in_probabilities;
            prop_adding_fact_monotone;
            prop_open_world_dominates;
            prop_cc_on_random_tables;
          ] );
      ( "bdd-laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bdd_de_morgan;
            prop_bdd_shannon;
            prop_bdd_xor_self;
            prop_wmc_total_probability;
          ] );
    ]
