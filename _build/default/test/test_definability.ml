(* Definability tests: the finite-case simulation of BID PDBs by FO views
   over TI PDBs (the positive counterpart that Proposition 4.9 shows fails
   in the countable setting). *)

let i n = Value.Int n
let q = Rational.of_ints

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

let simulate bid =
  let aux, views = Bid_table.ti_simulation bid in
  Finite_pdb.apply_fo_view views (Finite_pdb.of_ti aux)

let test_single_block () =
  (* One block {R(1): 1/2, R(2): 1/3}: slack 1/6. *)
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b";
          alternatives = [ (Fact.make "R" [ i 1 ], q 1 2); (Fact.make "R" [ i 2 ], q 1 3) ];
        };
      ]
  in
  let aux, _ = Bid_table.ti_simulation bid in
  (* chain conditionals: 1/2 and (1/3)/(1/2) = 2/3 *)
  check_q "r1" (q 1 2) (Ti_table.prob aux (Fact.make "Choose" [ i 0; i 0 ]));
  check_q "r2" (q 2 3) (Ti_table.prob aux (Fact.make "Choose" [ i 0; i 1 ]));
  Alcotest.(check bool) "distributions equal" true
    (Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_bid bid))

let test_multi_block_multi_rel () =
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b1";
          alternatives =
            [ (Fact.make "R" [ i 1 ], q 1 4); (Fact.make "S" [ i 1; i 2 ], q 1 2) ];
        };
        {
          Bid_table.block_id = "b2";
          alternatives = [ (Fact.make "R" [ i 2 ], q 3 5) ];
        };
      ]
  in
  Alcotest.(check bool) "distributions equal" true
    (Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_bid bid))

let test_full_mass_block () =
  (* A block with total mass exactly 1 (no slack): last conditional is 1. *)
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b";
          alternatives =
            [ (Fact.make "R" [ i 1 ], q 1 3); (Fact.make "R" [ i 2 ], q 2 3) ];
        };
      ]
  in
  let aux, _ = Bid_table.ti_simulation bid in
  check_q "second conditional is 1" Rational.one
    (Ti_table.prob aux (Fact.make "Choose" [ i 0; i 1 ]));
  Alcotest.(check bool) "distributions equal" true
    (Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_bid bid))

let test_zero_alternatives_skipped () =
  let bid =
    Bid_table.create
      [
        {
          Bid_table.block_id = "b";
          alternatives =
            [
              (Fact.make "R" [ i 1 ], Rational.zero);
              (Fact.make "R" [ i 2 ], q 1 2);
            ];
        };
      ]
  in
  let aux, _ = Bid_table.ti_simulation bid in
  Alcotest.(check int) "one chooser" 1 (Ti_table.size aux);
  Alcotest.(check bool) "distributions equal" true
    (Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_bid bid))

let test_ti_special_case () =
  (* A TI table seen as singleton-block BID simulates back to itself. *)
  let ti =
    Ti_table.create
      [ (Fact.make "R" [ i 1 ], q 1 2); (Fact.make "S" [ i 2 ], q 1 3) ]
  in
  let bid = Bid_table.of_ti ti in
  Alcotest.(check bool) "ti roundtrip" true
    (Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_ti ti))

(* Random BID tables: the simulation is distribution-exact. *)
let arb_bid =
  let open QCheck.Gen in
  let gen =
    let* nblocks = int_range 1 3 in
    let* blocks =
      List.init nblocks Fun.id
      |> List.map (fun bi ->
             let* nalts = int_range 1 3 in
             (* probabilities k/10 with sum <= 1: draw then normalize *)
             let* raw = list_repeat nalts (int_range 0 3) in
             let alts =
               List.mapi
                 (fun ai w -> (Fact.make "R" [ i ((10 * bi) + ai) ], q w 10))
                 raw
             in
             return { Bid_table.block_id = Printf.sprintf "b%d" bi; alternatives = alts })
      |> flatten_l
    in
    return (Bid_table.create blocks)
  in
  QCheck.make ~print:Bid_table.to_string gen

let props =
  [
    QCheck.Test.make ~name:"simulation reproduces distribution" ~count:60
      arb_bid (fun bid ->
        Finite_pdb.equal_distribution (simulate bid) (Finite_pdb.of_bid bid));
    QCheck.Test.make ~name:"simulation preserves marginals" ~count:60 arb_bid
      (fun bid ->
        let sim = simulate bid in
        List.for_all
          (fun f -> Rational.equal (Bid_table.prob bid f) (Finite_pdb.prob_ef sim f))
          (Bid_table.support bid));
    QCheck.Test.make ~name:"aux chooser count = positive alternatives" ~count:60
      arb_bid (fun bid ->
        let aux, _ = Bid_table.ti_simulation bid in
        Ti_table.size aux
        = List.length
            (List.filter
               (fun f -> Rational.sign (Bid_table.prob bid f) > 0)
               (Bid_table.support bid)));
  ]

let () =
  Alcotest.run "definability"
    [
      ( "bid-to-ti",
        [
          Alcotest.test_case "single block" `Quick test_single_block;
          Alcotest.test_case "multi block/rel" `Quick test_multi_block_multi_rel;
          Alcotest.test_case "full-mass block" `Quick test_full_mass_block;
          Alcotest.test_case "zero alternatives" `Quick
            test_zero_alternatives_skipped;
          Alcotest.test_case "ti special case" `Quick test_ti_special_case;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
