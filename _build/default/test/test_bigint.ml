(* Tests for the Bigint arbitrary-precision integer substrate. *)

module B = Bigint

let b = B.of_int
let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

(* ------------------------------------------------------------------ *)
(* Unit tests *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check int) "sign one" 1 (B.sign B.one);
  Alcotest.(check int) "sign minus_one" (-1) (B.sign B.minus_one);
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one);
  Alcotest.(check bool) "two = 1+1" true (B.equal B.two (B.add B.one B.one))

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "roundtrip %d" n)
        n
        (B.to_int (b n)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; -(1 lsl 30); (1 lsl 30) - 1; 1 lsl 45;
      max_int; -max_int; 123456789012345 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) ("roundtrip " ^ s) s B.(to_string (of_string s)))
    [ "0"; "1"; "-1"; "999999999999999999999999999999";
      "-123456789012345678901234567890123456789";
      "1000000000000000000000000000000000000000000000000" ]

let test_string_underscores () =
  check_b "underscores" (b 1234567) (B.of_string "1_234_567")

let test_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("invalid " ^ s) true (B.of_string_opt s = None))
    [ ""; "-"; "+"; "12a"; "_"; "1.5"; " 1" ]

let test_add_sub_small () =
  check_b "17+25" (b 42) (B.add (b 17) (b 25));
  check_b "17-25" (b (-8)) (B.sub (b 17) (b 25));
  check_b "-17-25" (b (-42)) (B.sub (b (-17)) (b 25));
  check_b "0+0" B.zero (B.add B.zero B.zero)

let test_add_carry_chain () =
  (* (2^300 - 1) + 1 = 2^300 exercises a long carry chain. *)
  let p300 = B.pow B.two 300 in
  check_b "carry chain" p300 (B.add (B.pred p300) B.one);
  check_b "borrow chain" (B.pred p300) (B.sub p300 B.one)

let test_mul_big () =
  let a = B.of_string "123456789123456789123456789" in
  let c = B.of_string "987654321987654321987654321" in
  check_b "known product"
    (B.of_string "121932631356500531591068431581771069347203169112635269")
    (B.mul a c);
  check_b "sq of 10^30"
    (B.of_string ("1" ^ String.make 60 '0'))
    (B.mul (B.of_string ("1" ^ String.make 30 '0'))
       (B.of_string ("1" ^ String.make 30 '0')))

let test_karatsuba_vs_school () =
  (* Numbers wide enough to trigger the Karatsuba path (>= 32 limbs,
     i.e. >= 960 bits); compare against a known algebraic identity
     (x+1)(x-1) = x^2 - 1. *)
  let x = B.pow (b 3) 700 in
  check_b "karatsuba identity"
    (B.pred (B.mul x x))
    (B.mul (B.succ x) (B.pred x))

let test_divmod_basic () =
  let q, r = B.divmod (b 17) (b 5) in
  check_b "17/5 q" (b 3) q;
  check_b "17%5 r" (b 2) r;
  let q, r = B.divmod (b (-17)) (b 5) in
  check_b "-17/5 q" (b (-3)) q;
  check_b "-17%5 r" (b (-2)) r;
  let q, r = B.divmod (b 17) (b (-5)) in
  check_b "17/-5 q" (b (-3)) q;
  check_b "17%-5 r" (b 2) r

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_divmod_multi_limb () =
  let a = B.of_string "340282366920938463463374607431768211456" (* 2^128 *) in
  let d = B.of_string "18446744073709551617" (* 2^64 + 1 *) in
  let q, r = B.divmod a d in
  check_b "2^128 / (2^64+1) recompose" a (B.add (B.mul q d) r);
  Alcotest.(check bool) "r < d" true (B.compare (B.abs r) d < 0)

let test_ediv_rem () =
  let q, r = B.ediv_rem (b (-17)) (b 5) in
  check_b "ediv q" (b (-4)) q;
  check_b "ediv r" (b 3) r;
  let q, r = B.ediv_rem (b (-17)) (b (-5)) in
  check_b "ediv neg q" (b 4) q;
  check_b "ediv neg r" (b 3) r

let test_gcd () =
  check_b "gcd 12 18" (b 6) (B.gcd (b 12) (b 18));
  check_b "gcd 0 5" (b 5) (B.gcd B.zero (b 5));
  check_b "gcd -12 18" (b 6) (B.gcd (b (-12)) (b 18));
  check_b "gcd big" (b 1)
    (B.gcd (B.of_string "123456789123456789123456791") (b 1000003))

let test_pow () =
  check_b "2^10" (b 1024) (B.pow B.two 10);
  check_b "x^0" B.one (B.pow (b 7919) 0);
  check_b "0^0" B.one (B.pow B.zero 0);
  check_b "10^20" (B.of_string "100000000000000000000") (B.pow (b 10) 20);
  Alcotest.check_raises "neg exponent"
    (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (B.pow B.two (-1)))

let test_shifts () =
  check_b "1 << 100" (B.pow B.two 100) (B.shift_left B.one 100);
  check_b "2^100 >> 100" B.one (B.shift_right (B.pow B.two 100) 100);
  check_b "2^100 >> 200" B.zero (B.shift_right (B.pow B.two 100) 200);
  check_b "-8 >> 1" (b (-4)) (B.shift_right (b (-8)) 1)

let test_compare_order () =
  let xs = List.map b [ -100; -1; 0; 1; 2; 100 ] in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          Alcotest.(check int)
            (Printf.sprintf "compare %d %d" i j)
            (compare i j)
            (B.compare x y))
        xs)
    xs

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 255" 8 (B.num_bits (b 255));
  Alcotest.(check int) "bits 256" 9 (B.num_bits (b 256));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "float 42" 42.0 (B.to_float (b 42));
  Alcotest.(check (float 1e-9)) "float -42" (-42.0) (B.to_float (b (-42)));
  Alcotest.(check (float 1.0)) "float 2^62"
    (ldexp 1.0 62)
    (B.to_float (B.pow B.two 62))

let test_parity_minmax () =
  Alcotest.(check bool) "even 0" true (B.is_even B.zero);
  Alcotest.(check bool) "even 2" true (B.is_even B.two);
  Alcotest.(check bool) "odd 3" false (B.is_even (b 3));
  check_b "min" (b (-5)) (B.min (b (-5)) (b 3));
  check_b "max" (b 3) (B.max (b (-5)) (b 3))

(* ------------------------------------------------------------------ *)
(* Property tests *)
(* ------------------------------------------------------------------ *)

let arb_ints = QCheck.int_range (-1_000_000) 1_000_000

(* An arbitrary-width bigint generated as a decimal string. *)
let arb_big =
  let gen =
    QCheck.Gen.(
      let* neg = bool in
      let* ndig = int_range 1 60 in
      let* digits =
        list_repeat ndig (map (fun d -> Char.chr (d + Char.code '0')) (int_range 0 9))
      in
      let s = String.init ndig (List.nth digits) in
      return (B.of_string (if neg then "-" ^ s else s)))
  in
  QCheck.make ~print:B.to_string gen

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let props =
  [
    prop "add agrees with int" 500
      QCheck.(pair arb_ints arb_ints)
      (fun (x, y) -> B.to_int (B.add (b x) (b y)) = x + y);
    prop "mul agrees with int" 500
      QCheck.(pair arb_ints arb_ints)
      (fun (x, y) -> B.to_int (B.mul (b x) (b y)) = x * y);
    prop "divmod agrees with int" 500
      QCheck.(pair arb_ints arb_ints)
      (fun (x, y) ->
        QCheck.assume (y <> 0);
        let q, r = B.divmod (b x) (b y) in
        B.to_int q = x / y && B.to_int r = x mod y);
    prop "string roundtrip" 300 arb_big (fun x ->
        B.equal x (B.of_string (B.to_string x)));
    prop "add commutative" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) -> B.equal (B.add x y) (B.add y x));
    prop "add associative" 300
      QCheck.(triple arb_big arb_big arb_big)
      (fun (x, y, z) ->
        B.equal (B.add (B.add x y) z) (B.add x (B.add y z)));
    prop "mul commutative" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) -> B.equal (B.mul x y) (B.mul y x));
    prop "mul associative" 100
      QCheck.(triple arb_big arb_big arb_big)
      (fun (x, y, z) ->
        B.equal (B.mul (B.mul x y) z) (B.mul x (B.mul y z)));
    prop "distributivity" 200
      QCheck.(triple arb_big arb_big arb_big)
      (fun (x, y, z) ->
        B.equal (B.mul x (B.add y z)) (B.add (B.mul x y) (B.mul x z)));
    prop "sub inverse of add" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) -> B.equal x (B.sub (B.add x y) y));
    prop "divmod recomposition" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) ->
        QCheck.assume (not (B.is_zero y));
        let q, r = B.divmod x y in
        B.equal x (B.add (B.mul q y) r)
        && B.compare (B.abs r) (B.abs y) < 0
        && (B.is_zero r || B.sign r = B.sign x));
    prop "ediv remainder nonneg" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) ->
        QCheck.assume (not (B.is_zero y));
        let q, r = B.ediv_rem x y in
        B.equal x (B.add (B.mul q y) r)
        && B.sign r >= 0
        && B.compare r (B.abs y) < 0);
    prop "gcd divides both" 200
      QCheck.(pair arb_big arb_big)
      (fun (x, y) ->
        QCheck.assume (not (B.is_zero x) || not (B.is_zero y));
        let g = B.gcd x y in
        B.is_zero (B.rem x g) && B.is_zero (B.rem y g));
    prop "shift_left is mul by 2^k" 200
      QCheck.(pair arb_big (int_range 0 100))
      (fun (x, k) -> B.equal (B.shift_left x k) (B.mul x (B.pow B.two k)));
    prop "compare antisymmetric" 300
      QCheck.(pair arb_big arb_big)
      (fun (x, y) -> B.compare x y = -B.compare y x);
    prop "to_float sign" 200 arb_big (fun x ->
        compare (B.to_float x) 0.0 = B.sign x || B.is_zero x);
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "string underscores" `Quick test_string_underscores;
          Alcotest.test_case "string invalid" `Quick test_string_invalid;
          Alcotest.test_case "add/sub small" `Quick test_add_sub_small;
          Alcotest.test_case "carry chains" `Quick test_add_carry_chain;
          Alcotest.test_case "mul big" `Quick test_mul_big;
          Alcotest.test_case "karatsuba identity" `Quick test_karatsuba_vs_school;
          Alcotest.test_case "divmod basic" `Quick test_divmod_basic;
          Alcotest.test_case "divmod by zero" `Quick test_divmod_by_zero;
          Alcotest.test_case "divmod multi-limb" `Quick test_divmod_multi_limb;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare order" `Quick test_compare_order;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "parity/minmax" `Quick test_parity_minmax;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
