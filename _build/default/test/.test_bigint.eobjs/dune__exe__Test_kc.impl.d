test/test_kc.ml: Alcotest Bdd Bigint Bool_expr Interval List Printf Prob QCheck QCheck_alcotest Rational Wmc
