test/test_laws.ml: Alcotest Approx_eval Bdd Bool_expr Completion Countable_ti Fact Fact_source Fo Fo_parse List Prob QCheck QCheck_alcotest Query_eval Rational Ti_table Value Wmc
