test/test_pdb.ml: Alcotest Bid_table Fact Finite_pdb Float Fo_parse Instance Interval List Prng Prob QCheck QCheck_alcotest Query_eval Rational Schema Seq Stdlib String Ti_table Value
