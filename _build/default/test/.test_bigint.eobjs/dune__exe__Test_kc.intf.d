test/test_kc.mli:
