test/test_series.ml: Alcotest Float List Prob QCheck QCheck_alcotest Seq Series Stdlib
