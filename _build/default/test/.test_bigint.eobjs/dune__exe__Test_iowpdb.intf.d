test/test_iowpdb.mli:
