test/test_extensions.ml: Alcotest Approx_eval Bool_expr Completion Fact Fact_source Fo Fo_eval Fo_parse Instance Lineage List Printf QCheck QCheck_alcotest Query_eval Rational Ti_table Tuple Value
