test/test_definability.ml: Alcotest Bid_table Fact Finite_pdb Fun List Printf QCheck QCheck_alcotest Rational Ti_table Value
