test/test_bigint.ml: Alcotest Bigint Char List Printf QCheck QCheck_alcotest String
