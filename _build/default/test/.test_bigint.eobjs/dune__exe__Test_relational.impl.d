test/test_relational.ml: Alcotest Algebra Array Fact Instance List QCheck QCheck_alcotest Schema Seq Tuple Value
