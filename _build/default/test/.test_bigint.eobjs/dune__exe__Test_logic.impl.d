test/test_logic.ml: Alcotest Bool_expr Fact Fo Fo_eval Fo_parse Instance Lineage List Option Printf Prob QCheck QCheck_alcotest Rational Safe_plan Tuple Value
