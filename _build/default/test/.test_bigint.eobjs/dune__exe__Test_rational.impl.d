test/test_rational.ml: Alcotest Bigint List QCheck QCheck_alcotest Rational
