test/test_dnf.ml: Alcotest Bool_expr Dnf Fact Float Fo_parse Int List Printf Prob QCheck QCheck_alcotest Query_eval Rational Set Stdlib Ti_table Value Wmc
