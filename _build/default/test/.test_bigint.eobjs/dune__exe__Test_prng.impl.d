test/test_prng.ml: Alcotest Array Float Fun List Printf Prng QCheck QCheck_alcotest Rational
