test/test_dnf.mli:
