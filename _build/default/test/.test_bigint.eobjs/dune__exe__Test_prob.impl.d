test/test_prob.ml: Alcotest Interval List Log_domain Printf Prob QCheck QCheck_alcotest Rational
