(* Tests for the extension features: built-in comparison atoms, open-world
   answer marginals on completions, and expected answer counts. *)

let i n = Value.Int n
let s x = Value.Str x
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

let check_q msg expected actual =
  Alcotest.(check string) msg (Rational.to_string expected)
    (Rational.to_string actual)

(* ------------------------------------------------------------------ *)
(* Comparison atoms: parsing and printing *)
(* ------------------------------------------------------------------ *)

let test_cmp_parse_print () =
  List.iter
    (fun str ->
      let f = parse str in
      Alcotest.(check bool) ("roundtrip " ^ str) true
        (Fo.equal f (parse (Fo.to_string f))))
    [ "x < y"; "x <= 3"; "x > y"; "x >= -2"; "exists x y. R(x, y) & x < y" ];
  Alcotest.(check bool) "ast shape" true
    (Fo.equal (parse "x < 3") (Fo.lt (Fo.v "x") (Fo.cint 3)));
  Alcotest.(check bool) "chained with and" true
    (Fo.equal (parse "x < 3 & y > 4")
       (Fo.And (Fo.lt (Fo.v "x") (Fo.cint 3), Fo.gt (Fo.v "y") (Fo.cint 4))))

let test_cmp_structure () =
  let f = parse "exists x. R(x) & x > 7" in
  Alcotest.(check (list string)) "closed" [] (Fo.free_vars f);
  Alcotest.(check int) "constants" 1 (List.length (Fo.constants f));
  Alcotest.(check bool) "positive" true (Fo.is_positive f);
  Alcotest.(check int) "rank" 1 (Fo.quantifier_rank f);
  (* substitution reaches comparison terms *)
  let g = Fo.substitute [ ("x", i 9) ] (parse "x > 7") in
  Alcotest.(check string) "subst" "9 > 7" (Fo.to_string g)

(* ------------------------------------------------------------------ *)
(* Comparison atoms: evaluation *)
(* ------------------------------------------------------------------ *)

let inst =
  Instance.of_list
    [ Fact.make "N" [ i 1 ]; Fact.make "N" [ i 5 ]; Fact.make "N" [ i 9 ] ]

let test_cmp_eval () =
  let check str expected =
    Alcotest.(check bool) str expected (Fo_eval.models inst (parse str))
  in
  check "exists x. N(x) & x > 7" true;
  check "exists x. N(x) & x > 9" false;
  check "forall x. N(x) -> x >= 1" true;
  check "forall x. N(x) -> x > 1" false;
  check "exists x y. N(x) & N(y) & x < y" true;
  check "5 <= 5" true;
  check "5 < 5" false;
  check "exists x. N(x) & 4 < x & x < 6" true

let test_cmp_answers () =
  let _, tuples = Fo_eval.answers inst (parse "N(x) & x > 2") in
  Alcotest.(check int) "two answers" 2 (Tuple.Set.cardinal tuples);
  Alcotest.(check bool) "5 in" true (Tuple.Set.mem [| i 5 |] tuples);
  Alcotest.(check bool) "9 in" true (Tuple.Set.mem [| i 9 |] tuples)

let test_cmp_across_sorts () =
  (* the documented total order: all ints before all strings *)
  Alcotest.(check bool) "int < str" true
    (Fo_eval.models Instance.empty
       (parse "exists x. x = 3 & x < \"a\""))

(* ------------------------------------------------------------------ *)
(* Comparison atoms: probabilistic engines *)
(* ------------------------------------------------------------------ *)

let ti =
  Ti_table.create
    [
      (Fact.make "T" [ i 10 ], q 1 2);
      (Fact.make "T" [ i 20 ], q 1 3);
      (Fact.make "T" [ i 30 ], q 1 4);
    ]

let test_cmp_engines_agree () =
  List.iter
    (fun str ->
      let phi = parse str in
      let reference = Query_eval.boolean_enum ti phi in
      check_q ("bdd " ^ str) reference (Query_eval.boolean_bdd_rational ti phi);
      check_q ("auto " ^ str) reference (Query_eval.boolean ti phi))
    [
      "exists x. T(x) & x > 15";
      "exists x. T(x) & x >= 30";
      "forall x. T(x) -> x < 25";
      "exists x y. T(x) & T(y) & x < y";
    ]

let test_cmp_exact_values () =
  (* P(exists x. T(x) & x > 15) = 1 - (1-1/3)(1-1/4) = 1/2 *)
  check_q "upper half" Rational.half
    (Query_eval.boolean ti (parse "exists x. T(x) & x > 15"));
  (* P(forall x. T(x) -> x < 25) = P(!T(30)) = 3/4 *)
  check_q "all below 25" (q 3 4)
    (Query_eval.boolean ti (parse "forall x. T(x) -> x < 25"))

let test_cmp_in_completion () =
  (* The paper-faithful "office 1 warmer than office 2" query. *)
  let observed =
    Ti_table.create
      [
        (Fact.make "Temp" [ i 1; i 201 ], q 1 2);
        (Fact.make "Temp" [ i 2; i 205 ], q 1 2);
      ]
  in
  let warmer = parse "exists x y. Temp(1, x) & Temp(2, y) & x > y" in
  check_q "closed world zero" Rational.zero (Query_eval.boolean observed warmer);
  let news =
    Fact_source.of_list ~name:"warm-tail"
      [
        (Fact.make "Temp" [ i 1; i 206 ], q 1 8);
        (Fact.make "Temp" [ i 2; i 199 ], q 1 8);
      ]
  in
  let c = Completion.complete_ti observed news in
  let r = Completion.query_prob c ~eps:0.001 warmer in
  (* warmer iff Temp(1,206) & Temp(2,205): wait - also (201 > 199):
     Temp(1,201) & Temp(2,199): 1/2 * 1/8 = 1/16; and 206>205 and 206>199.
     P = P((A & b') | (a' & (B | b'))) with A=Temp(1,201) p=1/2,
     B=Temp(2,205) p=1/2, a'=Temp(1,206) p=1/8, b'=Temp(2,199) p=1/8.
     Compute reference by brute force below. *)
  let reference =
    Query_eval.boolean_finite (Completion.truncated c ~n:2) warmer
  in
  check_q "open world exact on truncation" reference r.Approx_eval.estimate;
  Alcotest.(check bool) "positive" true (Rational.sign r.Approx_eval.estimate > 0)

(* ------------------------------------------------------------------ *)
(* Completion marginals / expected answer count *)
(* ------------------------------------------------------------------ *)

let base =
  Ti_table.create
    [
      (Fact.make "P" [ s "a" ], q 1 2);
      (Fact.make "P" [ s "b" ], q 1 4);
    ]

let completion () =
  Completion.complete_ti base
    (Fact_source.of_list ~name:"ext"
       [
         (Fact.make "P" [ s "c" ], q 1 8);
         (Fact.make "P" [ s "d" ], q 1 16);
       ])

let test_completion_marginals () =
  let c = completion () in
  let ms = Completion.marginals c ~eps:0.01 (parse "P(x)") in
  Alcotest.(check int) "4 tuples" 4 (List.length ms);
  let find v =
    match List.find_opt (fun (t, _) -> Tuple.equal t [| s v |]) ms with
    | Some (_, p) -> p
    | None -> Alcotest.failf "missing %s" v
  in
  check_q "a" (q 1 2) (find "a");
  check_q "b" (q 1 4) (find "b");
  check_q "c" (q 1 8) (find "c");
  check_q "d" (q 1 16) (find "d")

let test_completion_expected_count () =
  let c = completion () in
  (* E|answers| = 1/2 + 1/4 + 1/8 + 1/16 = 15/16 *)
  check_q "expected count" (q 15 16)
    (Completion.expected_answer_count c ~eps:0.01 (parse "P(x)"))

let test_completion_marginals_guards () =
  let c = completion () in
  Alcotest.check_raises "sentence rejected"
    (Invalid_argument "Completion.marginals: sentence has no free variables")
    (fun () ->
      ignore (Completion.marginals c ~eps:0.1 (parse "exists x. P(x)")));
  Alcotest.check_raises "too many vars"
    (Invalid_argument "Completion.marginals: more than 3 free variables")
    (fun () ->
      ignore
        (Completion.marginals c ~eps:0.1
           (parse "P(x) & P(y) & P(z) & P(w)")))

let test_completion_marginals_with_join () =
  (* marginal of a conjunctive formula over original and new facts *)
  let obs =
    Ti_table.create
      [ (Fact.make "A" [ i 1 ], q 1 2); (Fact.make "B" [ i 1 ], q 1 3) ]
  in
  let c =
    Completion.complete_ti obs
      (Fact_source.of_list ~name:"j" [ (Fact.make "B" [ i 2 ], q 1 5); (Fact.make "A" [ i 2 ], q 1 7) ])
  in
  let ms = Completion.marginals c ~eps:0.01 (parse "A(x) & B(x)") in
  Alcotest.(check int) "two joined tuples" 2 (List.length ms);
  List.iter
    (fun (tup, p) ->
      match tup with
      | [| Value.Int 1 |] -> check_q "1/6" (q 1 6) p
      | [| Value.Int 2 |] -> check_q "1/35" (q 1 35) p
      | _ -> Alcotest.fail "unexpected tuple")
    ms

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let props =
  [
    QCheck.Test.make ~name:"cmp eval consistent with Value.compare" ~count:300
      QCheck.(pair (int_range (-20) 20) (int_range (-20) 20))
      (fun (a, b) ->
        let f op = Fo.Cmp (op, Fo.cint a, Fo.cint b) in
        Fo_eval.models Instance.empty (f Fo.Lt) = (a < b)
        && Fo_eval.models Instance.empty (f Fo.Le) = (a <= b)
        && Fo_eval.models Instance.empty (f Fo.Gt) = (a > b)
        && Fo_eval.models Instance.empty (f Fo.Ge) = (a >= b));
    QCheck.Test.make ~name:"cmp lineage constant-folds" ~count:200
      QCheck.(pair (int_range 0 9) (int_range 0 9))
      (fun (a, b) ->
        let alpha = Lineage.alphabet [] in
        let lin = Lineage.of_sentence alpha (Fo.lt (Fo.cint a) (Fo.cint b)) in
        Bool_expr.is_constant lin = Some (a < b));
    QCheck.Test.make ~name:"trichotomy in formulas" ~count:200
      QCheck.(pair (int_range (-9) 9) (int_range (-9) 9))
      (fun (a, b) ->
        let parsef s = Fo_parse.parse_exn s in
        let str = Printf.sprintf "%d < %d | %d = %d | %d > %d" a b a b a b in
        Fo_eval.models Instance.empty (parsef str));
  ]

let () =
  Alcotest.run "extensions"
    [
      ( "cmp-syntax",
        [
          Alcotest.test_case "parse/print" `Quick test_cmp_parse_print;
          Alcotest.test_case "structure" `Quick test_cmp_structure;
        ] );
      ( "cmp-eval",
        [
          Alcotest.test_case "sentences" `Quick test_cmp_eval;
          Alcotest.test_case "answers" `Quick test_cmp_answers;
          Alcotest.test_case "across sorts" `Quick test_cmp_across_sorts;
        ] );
      ( "cmp-probabilistic",
        [
          Alcotest.test_case "engines agree" `Quick test_cmp_engines_agree;
          Alcotest.test_case "exact values" `Quick test_cmp_exact_values;
          Alcotest.test_case "in completion" `Quick test_cmp_in_completion;
        ] );
      ( "completion-marginals",
        [
          Alcotest.test_case "marginals" `Quick test_completion_marginals;
          Alcotest.test_case "expected count" `Quick test_completion_expected_count;
          Alcotest.test_case "guards" `Quick test_completion_marginals_guards;
          Alcotest.test_case "with join" `Quick test_completion_marginals_with_join;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
