(* Tests for exact rational arithmetic. *)

module Q = Rational
module B = Bigint

let q = Q.of_ints
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let test_canonical_form () =
  check_q "2/4 = 1/2" Q.half (q 2 4);
  check_q "-2/-4 = 1/2" Q.half (q (-2) (-4));
  check_q "2/-4 = -1/2" (q (-1) 2) (q 2 (-4));
  check_q "0/7 = 0" Q.zero (q 0 7);
  Alcotest.(check string) "den positive" "2" (B.to_string (Q.den (q 3 (-6))));
  Alcotest.(check string) "coprime" "1/3" (Q.to_string (q 113 339))

let test_make_zero_den () =
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Q.make B.one B.zero))

let test_field_ops () =
  check_q "1/2 + 1/3" (q 5 6) Q.(add half (q 1 3));
  check_q "1/2 - 1/3" (q 1 6) Q.(sub half (q 1 3));
  check_q "2/3 * 3/4" Q.half Q.(mul (q 2 3) (q 3 4));
  check_q "(1/2) / (1/3)" (q 3 2) Q.(div half (q 1 3));
  check_q "inv 2/5" (q 5 2) (Q.inv (q 2 5));
  check_q "neg" (q (-1) 2) (Q.neg Q.half);
  check_q "abs" Q.half (Q.abs (q (-1) 2))

let test_pow () =
  check_q "pow (2/3)^3" (q 8 27) (Q.pow (q 2 3) 3);
  check_q "pow (2/3)^-2" (q 9 4) (Q.pow (q 2 3) (-2));
  check_q "pow x^0" Q.one (Q.pow (q 7 11) 0)

let test_compl () =
  check_q "compl 1/3" (q 2 3) (Q.compl (q 1 3));
  check_q "compl 0" Q.one (Q.compl Q.zero);
  check_q "compl 1" Q.zero (Q.compl Q.one)

let test_sum_product () =
  check_q "sum" (q 11 6) (Q.sum [ Q.one; Q.half; q 1 3 ]);
  check_q "empty sum" Q.zero (Q.sum []);
  check_q "product" (q 1 4) (Q.product [ Q.half; Q.half ]);
  check_q "empty product" Q.one (Q.product [])

let test_floor_ceil () =
  Alcotest.(check string) "floor 7/2" "3" (B.to_string (Q.floor (q 7 2)));
  Alcotest.(check string) "ceil 7/2" "4" (B.to_string (Q.ceil (q 7 2)));
  Alcotest.(check string) "floor -7/2" "-4" (B.to_string (Q.floor (q (-7) 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (B.to_string (Q.ceil (q (-7) 2)));
  Alcotest.(check string) "floor 3" "3" (B.to_string (Q.floor (q 3 1)));
  Alcotest.(check string) "ceil 3" "3" (B.to_string (Q.ceil (q 3 1)))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true Q.(half < q 2 3);
  Alcotest.(check bool) "-1/2 < 1/3" true Q.(q (-1) 2 < q 1 3);
  Alcotest.(check bool) "1/2 = 2/4" true Q.(half = q 2 4);
  Alcotest.(check bool) "ge" true Q.(q 2 3 >= half)

let test_strings () =
  check_q "of_string a/b" (q 22 7) (Q.of_string "22/7");
  check_q "of_string int" (q 5 1) (Q.of_string "5");
  check_q "of_string neg frac" (q (-3) 4) (Q.of_string "-3/4");
  check_q "of_string decimal" (q 5 4) (Q.of_string "1.25");
  check_q "of_string neg decimal" (q (-5) 4) (Q.of_string "-1.25");
  check_q "of_string .5" Q.half (Q.of_string "0.5");
  Alcotest.(check bool) "bad 1/0" true (Q.of_string_opt "1/0" = None);
  Alcotest.(check bool) "bad empty" true (Q.of_string_opt "" = None);
  Alcotest.(check bool) "bad x" true (Q.of_string_opt "x" = None)

let test_decimal_string () =
  Alcotest.(check string) "1/4" "0.25" (Q.to_decimal_string (q 1 4));
  Alcotest.(check string) "1/3 trunc" "0.3333"
    (Q.to_decimal_string ~digits:4 (q 1 3));
  Alcotest.(check string) "-5/2" "-2.5" (Q.to_decimal_string (q (-5) 2));
  Alcotest.(check string) "7" "7" (Q.to_decimal_string (q 7 1))

let test_to_float () =
  Alcotest.(check (float 1e-15)) "1/2" 0.5 (Q.to_float Q.half);
  Alcotest.(check (float 1e-15)) "1/3" (1.0 /. 3.0) (Q.to_float (q 1 3));
  Alcotest.(check (float 1e-15)) "-22/7" (-22.0 /. 7.0) (Q.to_float (q (-22) 7));
  Alcotest.(check (float 0.0)) "0" 0.0 (Q.to_float Q.zero)

let test_of_float () =
  check_q "0.5" Q.half (Q.of_float_exn 0.5);
  check_q "0.25" (q 1 4) (Q.of_float_exn 0.25);
  check_q "-1.5" (q (-3) 2) (Q.of_float_exn (-1.5));
  check_q "3" (q 3 1) (Q.of_float_exn 3.0);
  Alcotest.(check bool) "roundtrip 0.1" true
    (Q.to_float (Q.of_float_exn 0.1) = 0.1);
  Alcotest.check_raises "nan" (Invalid_argument "Rational.of_float_exn: not finite")
    (fun () -> ignore (Q.of_float_exn nan))

let test_probability () =
  Alcotest.(check bool) "1/2 prob" true (Q.is_probability Q.half);
  Alcotest.(check bool) "0 prob" true (Q.is_probability Q.zero);
  Alcotest.(check bool) "1 prob" true (Q.is_probability Q.one);
  Alcotest.(check bool) "3/2 not" false (Q.is_probability (q 3 2));
  Alcotest.(check bool) "-1/2 not" false (Q.is_probability (q (-1) 2));
  check_q "clamp high" Q.one (Q.clamp01 (q 3 2));
  check_q "clamp low" Q.zero (Q.clamp01 (q (-1) 2));
  check_q "clamp id" Q.half (Q.clamp01 Q.half)

(* The Basel-style probabilities used throughout the paper: partial sums of
   6/(pi^2 n^2) stay below 1 and are exactly representable without the pi
   factor; check exact partial sums of 1/n^2 against known values. *)
let test_basel_partial_sum () =
  let s n =
    let rec go acc k =
      if k > n then acc else go (Q.add acc (q 1 (k * k))) (k + 1)
    in
    go Q.zero 1
  in
  check_q "sum 1/n^2, n<=3" (q 49 36) (s 3);
  check_q "sum 1/n^2, n<=4" (q 205 144) (s 4);
  Alcotest.(check bool) "below pi^2/6" true
    Q.(s 50 < q 16449 10000 (* pi^2/6 ~ 1.64493 *))

(* ------------------------------------------------------------------ *)
(* Property tests *)
(* ------------------------------------------------------------------ *)

let arb_q =
  let gen =
    QCheck.Gen.(
      let* n = int_range (-10000) 10000 in
      let* d = int_range 1 10000 in
      let* neg = bool in
      return (q n (if neg then -d else d)))
  in
  QCheck.make ~print:Q.to_string gen

let arb_q_nonzero =
  QCheck.make
    ~print:Q.to_string
    (QCheck.Gen.map
       (fun x -> if Q.is_zero x then Q.one else x)
       (QCheck.get_gen arb_q))

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let props =
  [
    prop "canonical: gcd(num,den)=1, den>0" 500 arb_q (fun x ->
        B.sign (Q.den x) > 0
        && B.is_one (B.gcd (Q.num x) (Q.den x))
           (* gcd with 0 num is den, which must then be 1 *)
        || (Q.is_zero x && B.is_one (Q.den x)));
    prop "add commutative" 300 QCheck.(pair arb_q arb_q) (fun (x, y) ->
        Q.equal (Q.add x y) (Q.add y x));
    prop "mul distributes" 300 QCheck.(triple arb_q arb_q arb_q)
      (fun (x, y, z) ->
        Q.equal (Q.mul x (Q.add y z)) (Q.add (Q.mul x y) (Q.mul x z)));
    prop "add/sub inverse" 300 QCheck.(pair arb_q arb_q) (fun (x, y) ->
        Q.equal x (Q.sub (Q.add x y) y));
    prop "mul/div inverse" 300 QCheck.(pair arb_q arb_q_nonzero)
      (fun (x, y) -> Q.equal x (Q.div (Q.mul x y) y));
    prop "inv involutive" 300 arb_q_nonzero (fun x ->
        Q.equal x (Q.inv (Q.inv x)));
    prop "compl involutive" 300 arb_q (fun x -> Q.equal x (Q.compl (Q.compl x)));
    prop "compare consistent with sub sign" 300 QCheck.(pair arb_q arb_q)
      (fun (x, y) -> Q.compare x y = Q.sign (Q.sub x y));
    prop "to_float monotone-ish" 300 QCheck.(pair arb_q arb_q) (fun (x, y) ->
        if Q.compare x y < 0 then Q.to_float x <= Q.to_float y else true);
    prop "of_string . to_string roundtrip" 300 arb_q (fun x ->
        Q.equal x (Q.of_string (Q.to_string x)));
    prop "of_float_exn exact roundtrip" 300
      (QCheck.make ~print:string_of_float
         QCheck.Gen.(map (fun (a, b) -> ldexp (float_of_int a) b)
             (pair (int_range (-10000) 10000) (int_range (-20) 20))))
      (fun f -> Q.to_float (Q.of_float_exn f) = f);
    prop "floor <= x < floor+1" 300 arb_q (fun x ->
        let f = Q.of_bigint (Q.floor x) in
        Q.(f <= x) && Q.(x < add f one));
  ]

let () =
  Alcotest.run "rational"
    [
      ( "unit",
        [
          Alcotest.test_case "canonical form" `Quick test_canonical_form;
          Alcotest.test_case "zero denominator" `Quick test_make_zero_den;
          Alcotest.test_case "field ops" `Quick test_field_ops;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "compl" `Quick test_compl;
          Alcotest.test_case "sum/product" `Quick test_sum_product;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "decimal string" `Quick test_decimal_string;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "of_float" `Quick test_of_float;
          Alcotest.test_case "probability" `Quick test_probability;
          Alcotest.test_case "basel partial sums" `Quick test_basel_partial_sum;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
