(* Tests for monotone DNF conversion and the Karp-Luby estimator. *)

module E = Bool_expr

let x0 = E.var 0
let x1 = E.var 1
let x2 = E.var 2

let test_of_expr_basic () =
  (match Dnf.of_expr (E.or2 (E.and2 x0 x1) x2) with
   | Some d ->
     Alcotest.(check int) "2 clauses" 2 (Dnf.num_clauses d);
     Alcotest.(check (list int)) "vars" [ 0; 1; 2 ] (Dnf.vars d)
   | None -> Alcotest.fail "monotone expression");
  (match Dnf.of_expr E.tru with
   | Some [ [] ] -> ()
   | _ -> Alcotest.fail "true is [[]]");
  (match Dnf.of_expr E.fls with
   | Some [] -> ()
   | _ -> Alcotest.fail "false is []")

let test_of_expr_distributes () =
  (* (x0 | x1) & (x1 | x2): distribution gives 4 clauses, absorption by
     {1} (since x1&x1 = x1 subsumes x0&x1 and x1&x2) leaves {1},{0,2}. *)
  match Dnf.of_expr (E.and2 (E.or2 x0 x1) (E.or2 x1 x2)) with
  | Some d ->
    Alcotest.(check int) "absorbed to 2" 2 (Dnf.num_clauses d);
    Alcotest.(check bool) "has {1}" true (List.mem [ 1 ] d);
    Alcotest.(check bool) "has {0,2}" true (List.mem [ 0; 2 ] d)
  | None -> Alcotest.fail "monotone expression"

let test_of_expr_rejects () =
  Alcotest.(check bool) "negation rejected" true
    (Dnf.of_expr (E.neg x0) = None);
  Alcotest.(check bool) "implication rejected" true
    (Dnf.of_expr (E.implies x0 x1) = None);
  (* clause blowup guard: AND of many wide ORs *)
  let wide =
    E.conj (List.init 16 (fun j -> E.disj [ E.var (2 * j); E.var ((2 * j) + 1) ]))
  in
  Alcotest.(check bool) "blowup capped" true
    (Dnf.of_expr ~max_clauses:1000 wide = None)

let test_dnf_eval_agrees () =
  let exprs =
    [
      x0;
      E.and2 x0 x1;
      E.or2 (E.and2 x0 x1) (E.and2 x1 x2);
      E.conj [ E.disj [ x0; x1 ]; E.disj [ x1; x2 ]; x0 ];
    ]
  in
  List.iter
    (fun e ->
      match Dnf.of_expr e with
      | None -> Alcotest.fail "monotone"
      | Some d ->
        for mask = 0 to 7 do
          let env i = mask land (1 lsl i) <> 0 in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %d" (E.to_string e) mask)
            (E.eval env e) (Dnf.eval env d)
        done)
    exprs

let test_to_expr_roundtrip () =
  let e = E.or2 (E.and2 x0 x1) x2 in
  match Dnf.of_expr e with
  | None -> Alcotest.fail "monotone"
  | Some d ->
    let e' = Dnf.to_expr d in
    for mask = 0 to 7 do
      let env i = mask land (1 lsl i) <> 0 in
      Alcotest.(check bool) "semantics kept" (E.eval env e) (E.eval env e')
    done

let test_clause_weight () =
  let w _ = Rational.half in
  let p =
    Dnf.clause_weight (module Prob.Rational_carrier) w [ 0; 1; 2 ]
  in
  Alcotest.(check string) "1/8" "1/8" (Rational.to_string p)

let test_karp_luby_exact_cases () =
  (* single clause: estimator is exactly the clause weight, zero variance *)
  let e = Dnf.karp_luby ~samples:100 ~weight:(fun _ -> 0.3) [ [ 0; 1 ] ] in
  Alcotest.(check (float 1e-12)) "single clause exact" 0.09 e.Dnf.value;
  Alcotest.(check (float 1e-12)) "zero variance" 0.0 e.Dnf.std_error

let test_karp_luby_matches_wmc () =
  (* random-ish monotone DNF: compare against exact WMC *)
  let expr = E.disj [ E.and2 x0 x1; E.and2 x1 x2; E.and2 x2 x0 ] in
  let weight v = 0.1 +. (0.2 *. float_of_int v) in
  let exact = Wmc.float_probability ~weight expr in
  match Dnf.of_expr expr with
  | None -> Alcotest.fail "monotone"
  | Some d ->
    let e = Dnf.karp_luby ~seed:5 ~samples:60_000 ~weight d in
    Alcotest.(check bool)
      (Printf.sprintf "estimate %.4f vs exact %.4f" e.Dnf.value exact)
      true
      (Float.abs (e.Dnf.value -. exact)
       < Stdlib.max (6.0 *. e.Dnf.std_error) 0.01);
    Alcotest.(check bool) "union bound above" true (e.Dnf.union_bound >= exact -. 1e-9)

let test_karp_luby_small_probability () =
  (* the FPRAS advantage: a very unlikely event still gets small RELATIVE
     error, where naive MC would need ~10^6 samples per hit *)
  let clause = [ 0; 1; 2 ] in
  let weight _ = 0.01 in
  (* P = 10^-6 *)
  let e = Dnf.karp_luby ~seed:7 ~samples:2000 ~weight [ clause ] in
  Alcotest.(check bool) "relative error tiny" true
    (Float.abs (e.Dnf.value -. 1e-6) /. 1e-6 < 1e-9)

let test_karp_luby_guards () =
  Alcotest.check_raises "empty dnf"
    (Invalid_argument "Dnf.karp_luby: empty DNF (probability is 0)")
    (fun () -> ignore (Dnf.karp_luby ~samples:10 ~weight:(fun _ -> 0.5) []));
  Alcotest.check_raises "bad samples"
    (Invalid_argument "Dnf.karp_luby: samples <= 0") (fun () ->
      ignore (Dnf.karp_luby ~samples:0 ~weight:(fun _ -> 0.5) [ [ 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Engine-level integration *)
(* ------------------------------------------------------------------ *)

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn

let ti =
  Ti_table.create
    (List.concat
       (List.init 6 (fun j ->
            [
              (Fact.make "R" [ i j ], q 1 5);
              (Fact.make "S" [ i j ], q 1 7);
            ])))

let test_engine_karp_luby () =
  let phi = parse "exists x. R(x) & S(x)" in
  let exact = Rational.to_float (Query_eval.boolean ti phi) in
  (match Query_eval.boolean_karp_luby ~seed:3 ~samples:50_000 ti phi with
   | Some r ->
     Alcotest.(check bool)
       (Printf.sprintf "kl %.5f vs exact %.5f" r.Query_eval.estimate exact)
       true
       (Float.abs (r.Query_eval.estimate -. exact)
        < Stdlib.max (6.0 *. r.Query_eval.std_error) 0.005)
   | None -> Alcotest.fail "monotone query rejected");
  (* negated query falls back to None *)
  Alcotest.(check bool) "negation unsupported" true
    (Query_eval.boolean_karp_luby ~samples:10 ti (parse "!(exists x. R(x))")
     = None);
  (* unsatisfiable lineage: Some 0 *)
  (match Query_eval.boolean_karp_luby ~samples:10 ti (parse "R(99)") with
   | Some r -> Alcotest.(check (float 0.0)) "zero" 0.0 r.Query_eval.estimate
   | None -> Alcotest.fail "false lineage is monotone")

let test_engine_mc_adaptive () =
  let phi = parse "exists x. R(x)" in
  let exact = Rational.to_float (Query_eval.boolean ti phi) in
  let r = Query_eval.boolean_mc_adaptive ~seed:11 ~eps:0.02 ~delta:0.01 ti phi in
  (* Hoeffding sample count: ln(200)/(2*4e-4) ~ 6623 *)
  Alcotest.(check bool) "sample count from bound" true
    (r.Query_eval.samples >= 6000 && r.Query_eval.samples <= 7000);
  Alcotest.(check bool) "within eps (prob 99%)" true
    (Float.abs (r.Query_eval.estimate -. exact) <= 0.02);
  Alcotest.check_raises "eps range"
    (Invalid_argument "Query_eval.boolean_mc_adaptive: eps out of range")
    (fun () ->
      ignore (Query_eval.boolean_mc_adaptive ~eps:0.0 ~delta:0.5 ti phi))

(* ------------------------------------------------------------------ *)
(* Properties *)
(* ------------------------------------------------------------------ *)

let arb_monotone =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then map E.var (int_range 0 5)
    else
      frequency
        [
          (2, map E.var (int_range 0 5));
          (3, map2 E.and2 (gen (n / 2)) (gen (n / 2)));
          (3, map2 E.or2 (gen (n / 2)) (gen (n / 2)));
        ]
  in
  QCheck.make ~print:E.to_string (gen 5)

let props =
  [
    QCheck.Test.make ~name:"dnf semantics = expr semantics" ~count:200
      arb_monotone (fun e ->
        match Dnf.of_expr e with
        | None -> false
        | Some d ->
          List.for_all
            (fun mask ->
              let env i = mask land (1 lsl i) <> 0 in
              E.eval env e = Dnf.eval env d)
            [ 0; 9; 21; 42; 63 ]);
    QCheck.Test.make ~name:"no clause subsumes another" ~count:200 arb_monotone
      (fun e ->
        match Dnf.of_expr e with
        | None -> false
        | Some d ->
          let module S = Set.Make (Int) in
          let sets = List.map S.of_list d in
          List.for_all
            (fun s ->
              List.for_all
                (fun s' -> S.equal s s' || not (S.subset s' s))
                sets)
            sets);
    QCheck.Test.make ~name:"karp-luby unbiased-ish on random dnf" ~count:20
      arb_monotone (fun e ->
        match Dnf.of_expr e with
        | None | Some [] -> true
        | Some d ->
          let weight v = 0.15 +. (0.1 *. float_of_int v) in
          let exact = Wmc.float_probability ~weight (Dnf.to_expr d) in
          let est = Dnf.karp_luby ~seed:13 ~samples:20_000 ~weight d in
          Float.abs (est.Dnf.value -. exact)
          < Stdlib.max (8.0 *. est.Dnf.std_error) 0.02);
  ]

let () =
  Alcotest.run "dnf"
    [
      ( "conversion",
        [
          Alcotest.test_case "basic" `Quick test_of_expr_basic;
          Alcotest.test_case "distributes/absorbs" `Quick test_of_expr_distributes;
          Alcotest.test_case "rejections" `Quick test_of_expr_rejects;
          Alcotest.test_case "eval agrees" `Quick test_dnf_eval_agrees;
          Alcotest.test_case "to_expr roundtrip" `Quick test_to_expr_roundtrip;
          Alcotest.test_case "clause weight" `Quick test_clause_weight;
        ] );
      ( "karp-luby",
        [
          Alcotest.test_case "exact cases" `Quick test_karp_luby_exact_cases;
          Alcotest.test_case "matches wmc" `Slow test_karp_luby_matches_wmc;
          Alcotest.test_case "small probability" `Quick
            test_karp_luby_small_probability;
          Alcotest.test_case "guards" `Quick test_karp_luby_guards;
        ] );
      ( "engines",
        [
          Alcotest.test_case "karp-luby engine" `Slow test_engine_karp_luby;
          Alcotest.test_case "adaptive MC" `Slow test_engine_mc_adaptive;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
