(* Tests for the Series module: certified tails, truncation points and the
   infinite-product machinery of Section 2.2 / claim (∗) of the paper. *)

module S = Series

let checkf = Alcotest.(check (float 1e-9))

let test_geometric_terms () =
  let s = S.geometric ~first:1.0 ~ratio:0.5 () in
  checkf "a0" 1.0 (S.term s 0);
  checkf "a3" 0.125 (S.term s 3);
  checkf "partial 4" 1.875 (S.partial_sum s 4);
  (match S.tail s 2 with
   | Some t -> checkf "tail exact" 0.5 t
   | None -> Alcotest.fail "geometric must have tails");
  Alcotest.(check bool) "converges" true (S.converges s)

let test_geometric_invalid () =
  Alcotest.check_raises "ratio 1" (Invalid_argument "Series.geometric")
    (fun () -> ignore (S.geometric ~ratio:1.0 ()));
  Alcotest.check_raises "neg ratio" (Invalid_argument "Series.geometric")
    (fun () -> ignore (S.geometric ~ratio:(-0.1) ()))

let test_zeta2 () =
  let s = S.zeta2 () in
  checkf "a0" 1.0 (S.term s 0);
  checkf "a1" 0.25 (S.term s 1);
  (* Tail bound sound: true tail at n is pi^2/6 - partial, must be <= bound. *)
  let pi = 4.0 *. atan 1.0 in
  let total = pi *. pi /. 6.0 in
  List.iter
    (fun n ->
      match S.tail s n with
      | Some b ->
        let true_tail = total -. S.partial_sum s n in
        if true_tail > b +. 1e-9 then
          Alcotest.failf "tail bound unsound at %d: %g > %g" n true_tail b
      | None -> Alcotest.fail "zeta2 must have tails")
    [ 1; 2; 10; 100; 1000 ]

let test_basel_is_probability () =
  let s = S.basel_probability () in
  let approx = S.partial_sum s 200_000 in
  Alcotest.(check bool) "sums to ~1" true (Float.abs (approx -. 1.0) < 1e-4);
  Alcotest.(check bool) "below 1" true (approx < 1.0)

let test_log_slow_sound () =
  let s = S.log_slow () in
  (* Soundness of the integral-test tail: check tail(n) >= sum of the next
     50k terms for a few n. *)
  List.iter
    (fun n ->
      match S.tail s n with
      | Some b ->
        let chunk =
          Prob.kahan_sum_seq (Seq.init 50_000 (fun i -> S.term s (n + i)))
        in
        if chunk > b then Alcotest.failf "log_slow tail unsound at %d" n
      | None -> Alcotest.fail "log_slow must have tails")
    [ 1; 10; 100 ]

let test_divergent () =
  Alcotest.(check bool) "harmonic diverges" false (S.converges (S.harmonic ()));
  Alcotest.(check bool) "constant diverges" false
    (S.converges (S.constant ~value:0.25));
  Alcotest.(check bool) "constant 0 converges" true
    (S.converges (S.constant ~value:0.0));
  Alcotest.(check bool) "no prefix for divergent" true
    (S.prefix_for_tail (S.harmonic ()) 0.1 = None)

let test_of_list () =
  let s = S.of_list [ 0.5; 0.25; 0.125 ] in
  checkf "term 1" 0.25 (S.term s 1);
  checkf "term past end" 0.0 (S.term s 7);
  (match S.tail s 1 with
   | Some t -> checkf "suffix tail" 0.375 t
   | None -> Alcotest.fail "finite series has tails");
  (match S.tail s 3 with
   | Some t -> checkf "zero tail" 0.0 t
   | None -> Alcotest.fail "finite series has tails")

let test_map_scale_drop () =
  let s = S.map_scale 2.0 (S.geometric ~ratio:0.5 ()) in
  checkf "scaled a1" 1.0 (S.term s 1);
  (match S.tail s 1 with
   | Some t -> checkf "scaled tail" 2.0 t
   | None -> Alcotest.fail "tail expected");
  let d = S.drop 2 (S.geometric ~ratio:0.5 ()) in
  checkf "dropped a0" 0.25 (S.term d 0)

let test_prefix_for_tail () =
  let s = S.geometric ~ratio:0.5 () in
  (* tail n = 2^(1-n); want <= 0.01 -> n >= 1 + log2(100) ~ 7.64 -> 8 *)
  (match S.prefix_for_tail s 0.01 with
   | Some n ->
     Alcotest.(check int) "geometric n(0.01)" 8 n;
     (match S.tail s n with
      | Some t -> Alcotest.(check bool) "achieves bound" true (t <= 0.01)
      | None -> Alcotest.fail "tail expected")
   | None -> Alcotest.fail "prefix expected");
  (match S.prefix_for_tail s 10.0 with
   | Some n -> Alcotest.(check int) "trivial bound" 0 n
   | None -> Alcotest.fail "prefix expected")

let test_prefix_growth_shapes () =
  (* E2's shape in miniature: geometric needs O(log 1/eps) terms, zeta2
     needs O(1/eps), log_slow needs exp(1/eps)-ish. *)
  let n_of s eps =
    match S.prefix_for_tail s eps with Some n -> n | None -> max_int
  in
  let geo = S.geometric ~ratio:0.5 () and z = S.zeta2 () in
  Alcotest.(check bool) "geometric much cheaper than zeta at 1e-4" true
    (n_of geo 1e-4 * 100 < n_of z 1e-4);
  Alcotest.(check bool) "zeta n(1e-4) ~ 1e4" true
    (let n = n_of z 1e-4 in n >= 9_000 && n <= 11_000)

let test_product_compl_prefix () =
  let s = S.of_list [ 0.5; 0.5 ] in
  checkf "(1-.5)^2" 0.25 (S.product_compl_prefix s 2);
  checkf "empty product" 1.0 (S.product_compl_prefix s 0);
  (* trailing zero terms contribute factor 1 *)
  checkf "with zeros" 0.25 (S.product_compl_prefix s 10)

let test_product_compl_bounds () =
  let s = S.geometric ~first:0.25 ~ratio:0.5 () in
  (* Total product over all i of (1 - 0.25 * 0.5^i). *)
  let reference = S.product_compl_prefix s 200 (* converged far past eps *) in
  (match S.product_compl_bounds s 8 with
   | Some (lo, hi) ->
     Alcotest.(check bool) "lo <= ref" true (lo <= reference +. 1e-12);
     Alcotest.(check bool) "ref <= hi" true (reference <= hi +. 1e-12);
     Alcotest.(check bool) "bracket tight-ish" true (hi -. lo < 0.01)
   | None -> Alcotest.fail "bounds expected");
  Alcotest.(check bool) "divergent: none" true
    (S.product_compl_bounds (S.harmonic ()) 4 = None)

let test_star_bound () =
  (* Claim (∗): prod (1-p_i) >= exp(-3/2 sum p_i) whenever p_i < 1/2,
     i.e. gap >= 1. *)
  List.iter
    (fun s ->
      match S.star_bound_gap s 50 with
      | Some gap ->
        Alcotest.(check bool) (S.name s ^ " gap >= 1") true (gap >= 1.0 -. 1e-12)
      | None -> Alcotest.fail "gap expected")
    [
      S.geometric ~first:0.4 ~ratio:0.5 ();
      S.zeta2 ~scale:0.4 ();
      S.of_list [ 0.49; 0.3; 0.2; 0.1 ];
    ];
  (* Inapplicable when a term >= 1/2. *)
  Alcotest.(check bool) "term 1/2 excluded" true
    (S.star_bound_gap (S.of_list [ 0.5 ]) 1 = None)

let test_distributive_law () =
  (* Lemma 2.3 on finite instances: identity holds to float accuracy. *)
  List.iter
    (fun xs ->
      let gap = S.distributive_law_check xs in
      if gap > 1e-9 then Alcotest.failf "distributive law gap %g" gap)
    [ []; [ 0.5 ]; [ 0.1; 0.2; 0.3 ]; [ 1.0; 1.0; 1.0 ]; [ 0.9; 0.8; 0.7; 0.6; 0.5 ] ]

let props =
  [
    QCheck.Test.make ~name:"geometric tail sound" ~count:200
      QCheck.(pair (float_range 0.01 0.9) (int_range 0 30))
      (fun (ratio, n) ->
        let s = S.geometric ~ratio () in
        match S.tail s n with
        | Some b ->
          (* sum 2000 terms of the tail; must be below the bound *)
          let approx =
            Prob.kahan_sum_seq (Seq.init 2000 (fun i -> S.term s (n + i)))
          in
          approx <= b +. 1e-9
        | None -> false);
    QCheck.Test.make ~name:"prefix_for_tail returns least-ish point" ~count:100
      (QCheck.float_range 1e-6 0.5)
      (fun eps ->
        let s = S.zeta2 () in
        match S.prefix_for_tail s eps with
        | Some n -> (
            (match S.tail s n with Some t -> t <= eps | None -> false)
            &&
            match S.tail s (Stdlib.max 0 (n - 1)) with
            | Some t -> n = 0 || t > eps
            | None -> false)
        | None -> false);
    QCheck.Test.make ~name:"distributive law random" ~count:100
      QCheck.(list_of_size (QCheck.Gen.int_range 0 10) (float_range 0.0 1.0))
      (fun xs -> S.distributive_law_check xs < 1e-6);
    QCheck.Test.make ~name:"star gap >= 1 on random small probs" ~count:100
      QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (float_range 0.0 0.49))
      (fun xs ->
        match S.star_bound_gap (S.of_list xs) (List.length xs) with
        | Some gap -> gap >= 1.0 -. 1e-9
        | None -> false);
  ]

let () =
  Alcotest.run "series"
    [
      ( "stock",
        [
          Alcotest.test_case "geometric" `Quick test_geometric_terms;
          Alcotest.test_case "geometric invalid" `Quick test_geometric_invalid;
          Alcotest.test_case "zeta2 sound" `Quick test_zeta2;
          Alcotest.test_case "basel probability" `Slow test_basel_is_probability;
          Alcotest.test_case "log_slow sound" `Slow test_log_slow_sound;
          Alcotest.test_case "divergent" `Quick test_divergent;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "map_scale/drop" `Quick test_map_scale_drop;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "prefix_for_tail" `Quick test_prefix_for_tail;
          Alcotest.test_case "growth shapes" `Quick test_prefix_growth_shapes;
        ] );
      ( "products",
        [
          Alcotest.test_case "prefix product" `Quick test_product_compl_prefix;
          Alcotest.test_case "two-sided bounds" `Quick test_product_compl_bounds;
          Alcotest.test_case "claim (*) gap" `Quick test_star_bound;
          Alcotest.test_case "lemma 2.3 finite" `Quick test_distributive_law;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
