(* Unit tests for the regression-gate core: key classification, the
   judgement rules (informational quantiles never fail; rates gate on
   absolute drift; times gate on ratio with a floor), and the flat-JSON
   metric reader. *)

open Compare_core

let gate = Alcotest.testable (fun fmt g ->
    Format.pp_print_string fmt
      (match g with
      | Time -> "Time"
      | Rate -> "Rate"
      | Info -> "Info"
      | Skip -> "Skip"))
    ( = )

let test_gate_of_key () =
  let check k expect = Alcotest.check gate k expect (gate_of_key k) in
  check "seconds" Time;
  check "old_seconds" Time;
  check "batch_seconds" Time;
  check "lifted_s_n14" Time;
  check "latency_p50" Info;
  check "latency_p99" Info;
  check "capacity_qps" Info;
  (* the informational suffix must win over the time family *)
  check "warm_seconds_p99" Info;
  check "shed_rate" Rate;
  check "deadline_hit_rate" Rate;
  check "speedup" Skip;
  check "bdd_nodes" Skip;
  check "cache_hits" Skip

let j = judge ~factor:2.0 ~floor:0.02 ~rate_tol:0.35

let test_time_judgement () =
  (match j Time ~fresh:0.30 ~base:0.10 with
  | Regression _ -> ()
  | _ -> Alcotest.fail "3x slowdown must regress");
  (match j Time ~fresh:0.19 ~base:0.10 with
  | Pass -> ()
  | _ -> Alcotest.fail "1.9x must pass at factor 2");
  (* both sides under the floor: timer noise, never judged *)
  (match j Time ~fresh:0.019 ~base:0.001 with
  | Sub_floor -> ()
  | _ -> Alcotest.fail "sub-floor pair must be skipped");
  (* fresh above the floor is judged even against a tiny baseline *)
  match j Time ~fresh:0.5 ~base:0.001 with
  | Regression _ -> ()
  | _ -> Alcotest.fail "above-floor blowup must regress"

let test_rate_judgement () =
  (match j Rate ~fresh:0.9 ~base:0.3 with
  | Regression _ -> ()
  | _ -> Alcotest.fail "0.6 drift must regress at tolerance 0.35");
  (match j Rate ~fresh:0.0 ~base:0.5 with
  | Regression _ -> ()
  | _ -> Alcotest.fail "drift gates in both directions");
  (match j Rate ~fresh:0.5 ~base:0.3 with
  | Pass -> ()
  | _ -> Alcotest.fail "0.2 drift must pass");
  (* rates never hit the time floor, even when tiny *)
  match j Rate ~fresh:0.4 ~base:0.0 with
  | Regression _ -> ()
  | _ -> Alcotest.fail "tiny rates are still judged"

let test_info_never_fails () =
  List.iter
    (fun (fresh, base) ->
      match j Info ~fresh ~base with
      | Pass -> ()
      | _ -> Alcotest.fail "Info keys never fail")
    [ (100.0, 0.001); (0.0, 5.0); (nan, 1.0) ]

let test_parse_line () =
  let kv = Alcotest.(option (pair string (float 1e-9))) in
  Alcotest.check kv "plain" (Some ("seconds", 1.25))
    (parse_line "  \"seconds\": 1.25,");
  Alcotest.check kv "no comma" (Some ("shed_rate", 0.4))
    (parse_line "\"shed_rate\": 0.4");
  Alcotest.check kv "unquoted key" None (parse_line "seconds: 1.0");
  Alcotest.check kv "non-numeric" None (parse_line "\"id\": \"E23\"");
  Alcotest.check kv "brace" None (parse_line "{")

let test_read_metrics () =
  let path = Filename.temp_file "bench_compare" ".json" in
  let oc = open_out path in
  output_string oc
    "{\n  \"id\": \"E23\",\n  \"capacity_qps\": 120.5,\n  \"shed_rate\": 0.4\n}\n";
  close_out oc;
  let got = read_metrics path in
  Sys.remove path;
  Alcotest.(check (list (pair string (float 1e-9))))
    "id dropped, order kept"
    [ ("capacity_qps", 120.5); ("shed_rate", 0.4) ]
    got

let () =
  Alcotest.run "compare"
    [
      ( "gate",
        [
          Alcotest.test_case "gate_of_key" `Quick test_gate_of_key;
          Alcotest.test_case "time ratio + floor" `Quick test_time_judgement;
          Alcotest.test_case "rate absolute drift" `Quick test_rate_judgement;
          Alcotest.test_case "info never fails" `Quick test_info_never_fails;
        ] );
      ( "reader",
        [
          Alcotest.test_case "parse_line" `Quick test_parse_line;
          Alcotest.test_case "read_metrics" `Quick test_read_metrics;
        ] );
    ]
