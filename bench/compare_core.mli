(** Pure core of the baseline regression gate ([compare.exe]): metric
    key classification, per-metric judgement, and the flat-JSON metric
    reader for the [BENCH_<id>.json] files [bench/main.ml] writes. *)

type gate =
  | Time  (** ratio-gated wall-clock seconds *)
  | Rate  (** absolute-drift-gated fraction in [0, 1] *)
  | Info  (** reported, never gated (latency quantiles, QPS) *)
  | Skip  (** not compared (counters, sizes, speedups) *)

val is_time_key : string -> bool
(** ["seconds"], [.._seconds], and the per-size [.._s_n..] keys. *)

val gate_of_key : string -> gate
(** [_p50]/[_p99]/[_qps] suffixes are {!Info}; [_rate] is {!Rate};
    time keys are {!Time}; everything else {!Skip}. The informational
    suffixes win over the time family, so a hypothetical
    [warm_seconds_p99] would report, not gate. *)

type judgement =
  | Pass
  | Sub_floor  (** both sides under the noise floor; not judged *)
  | Regression of string  (** human-readable reason *)

val judge :
  factor:float ->
  floor:float ->
  rate_tol:float ->
  gate ->
  fresh:float ->
  base:float ->
  judgement
(** {!Time}: fail when [fresh/base > factor], unless both are at or
    under [floor] seconds. {!Rate}: fail when [|fresh - base|] exceeds
    [rate_tol]. {!Info} and {!Skip} always pass. *)

val parse_line : string -> (string * float) option
(** One line of the flat writer: ["key": value[,]]. *)

val read_metrics : string -> (string * float) list
(** All numeric key/value pairs of one [BENCH_<id>.json], minus ["id"]. *)

val bench_files : string -> string list
(** Sorted [BENCH_*.json] basenames under a directory. *)
