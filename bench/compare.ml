(* Baseline regression gate.

   Usage: compare.exe FRESH_DIR BASELINE_DIR
            [--factor F] [--floor S] [--rate-tol D]

   Reads every BENCH_<id>.json present in BOTH directories (the
   hand-rolled flat format bench/main.ml writes: one ["key": value] pair
   per line) and exits 1 on a regression.  The rules live in
   Compare_core (unit tested in the bench runtest): wall-clock keys are
   ratio-gated with a noise floor, [_rate] keys are gated on absolute
   drift, latency quantiles ([_p50]/[_p99]) and QPS are reported but
   never fail.  Ids or keys present on one side only are reported but
   never fail the gate — experiments come and go across PRs, and the
   gate must not force lock-step baseline updates. *)

let factor = ref 2.0
let floor_s = ref 0.02
let rate_tol = ref 0.35

let () =
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--factor" :: v :: rest ->
      factor := float_of_string v;
      parse_args rest
    | "--floor" :: v :: rest ->
      floor_s := float_of_string v;
      parse_args rest
    | "--rate-tol" :: v :: rest ->
      rate_tol := float_of_string v;
      parse_args rest
    | a :: rest ->
      positional := a :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let fresh_dir, base_dir =
    match List.rev !positional with
    | [ f; b ] -> (f, b)
    | _ ->
      prerr_endline
        "usage: compare.exe FRESH_DIR BASELINE_DIR [--factor F] [--floor S] \
         [--rate-tol D]";
      exit 2
  in
  let fresh_files = Compare_core.bench_files fresh_dir
  and base_files = Compare_core.bench_files base_dir in
  let common = List.filter (fun f -> List.mem f base_files) fresh_files in
  if common = [] then begin
    Printf.eprintf "compare: no common BENCH_*.json between %s and %s\n"
      fresh_dir base_dir;
    exit 2
  end;
  List.iter
    (fun f ->
      if not (List.mem f base_files) then
        Printf.printf "  new experiment (no baseline yet): %s\n" f)
    fresh_files;
  let regressions = ref 0 in
  Printf.printf "  factor %.2fx, floor %.3fs, rate tolerance %.2f\n" !factor
    !floor_s !rate_tol;
  List.iter
    (fun file ->
      let fresh = Compare_core.read_metrics (Filename.concat fresh_dir file) in
      let base = Compare_core.read_metrics (Filename.concat base_dir file) in
      List.iter
        (fun (key, fv) ->
          match Compare_core.gate_of_key key with
          | Compare_core.Skip -> ()
          | gate -> (
            match List.assoc_opt key base with
            | None -> Printf.printf "  %-18s %-22s no baseline key\n" file key
            | Some bv -> (
              match
                Compare_core.judge ~factor:!factor ~floor:!floor_s
                  ~rate_tol:!rate_tol gate ~fresh:fv ~base:bv
              with
              | Compare_core.Sub_floor ->
                Printf.printf "  %-18s %-22s %8.4fs vs %8.4fs  (sub-floor)\n"
                  file key fv bv
              | Compare_core.Pass when gate = Compare_core.Info ->
                Printf.printf "  %-18s %-22s %8.4f  vs %8.4f   (info)\n" file
                  key fv bv
              | Compare_core.Pass ->
                Printf.printf "  %-18s %-22s %8.4f  vs %8.4f \n" file key fv bv
              | Compare_core.Regression why ->
                incr regressions;
                Printf.printf "  %-18s %-22s %8.4f  vs %8.4f   REGRESSION: %s\n"
                  file key fv bv why)))
        fresh)
    common;
  if !regressions > 0 then begin
    Printf.printf "compare: %d regression(s)\n" !regressions;
    exit 1
  end
  else print_endline "compare: no regressions"
