(* Baseline regression gate.

   Usage: compare.exe FRESH_DIR BASELINE_DIR [--factor F] [--floor S]

   Reads every BENCH_<id>.json present in BOTH directories (the
   hand-rolled flat format bench/main.ml writes: one ["key": value] pair
   per line), compares the wall-clock metrics, and exits 1 when a fresh
   time exceeds [factor] times its baseline.  Sub-[floor] pairs are
   skipped: CI timer noise on a metric of a few milliseconds says
   nothing about a regression.  Ids or keys present on one side only are
   reported but never fail the gate — experiments come and go across
   PRs, and the gate must not force lock-step baseline updates. *)

let factor = ref 2.0
let floor_s = ref 0.02

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* The wall-clock keys: the per-experiment harness total ("seconds"),
   the old/new kernel loops ("old_seconds"/"new_seconds", E22's
   "seq_seconds"/"batch_seconds"), and the per-size engine times
   ("lifted_s_n14", "oracle_s_n10", ...).  Counters (cache hits, node
   counts) and ratios (speedups) are excluded — they gate correctness
   elsewhere, and comparing them as times is meaningless. *)
let is_time_key k =
  k = "seconds" || Filename.check_suffix k "_seconds"
  || contains_substring k "_s_n"

(* A line of the flat writer:      "key": value[,]  *)
let parse_line line =
  let line = String.trim line in
  let line =
    if String.length line > 0 && line.[String.length line - 1] = ',' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match String.index_opt line ':' with
  | None -> None
  | Some colon -> (
    let k = String.trim (String.sub line 0 colon) in
    let v =
      String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
    in
    if String.length k < 2 || k.[0] <> '"' || k.[String.length k - 1] <> '"'
    then None
    else
      let key = String.sub k 1 (String.length k - 2) in
      match float_of_string_opt v with
      | Some f -> Some (key, f)
      | None -> None)

let read_metrics path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       match parse_line (input_line ic) with
       | Some ((("id" : string)), _) | None -> ()
       | Some kv -> out := kv :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let bench_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 11
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

let () =
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--factor" :: v :: rest ->
      factor := float_of_string v;
      parse_args rest
    | "--floor" :: v :: rest ->
      floor_s := float_of_string v;
      parse_args rest
    | a :: rest ->
      positional := a :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let fresh_dir, base_dir =
    match List.rev !positional with
    | [ f; b ] -> (f, b)
    | _ ->
      prerr_endline
        "usage: compare.exe FRESH_DIR BASELINE_DIR [--factor F] [--floor S]";
      exit 2
  in
  let fresh_files = bench_files fresh_dir and base_files = bench_files base_dir in
  let common = List.filter (fun f -> List.mem f base_files) fresh_files in
  if common = [] then begin
    Printf.eprintf "compare: no common BENCH_*.json between %s and %s\n"
      fresh_dir base_dir;
    exit 2
  end;
  List.iter
    (fun f ->
      if not (List.mem f base_files) then
        Printf.printf "  new experiment (no baseline yet): %s\n" f)
    fresh_files;
  let regressions = ref 0 in
  Printf.printf "  factor %.2fx, floor %.3fs\n" !factor !floor_s;
  List.iter
    (fun file ->
      let fresh = read_metrics (Filename.concat fresh_dir file) in
      let base = read_metrics (Filename.concat base_dir file) in
      List.iter
        (fun (key, fv) ->
          if is_time_key key then
            match List.assoc_opt key base with
            | None -> Printf.printf "  %-18s %-22s no baseline key\n" file key
            | Some bv ->
              if fv <= !floor_s && bv <= !floor_s then
                Printf.printf "  %-18s %-22s %8.4fs vs %8.4fs  (sub-floor)\n"
                  file key fv bv
              else begin
                let ratio = fv /. Float.max bv 1e-9 in
                let bad = ratio > !factor in
                if bad then incr regressions;
                Printf.printf "  %-18s %-22s %8.4fs vs %8.4fs  %5.2fx%s\n" file
                  key fv bv ratio
                  (if bad then "  REGRESSION" else "")
              end)
        fresh)
    common;
  if !regressions > 0 then begin
    Printf.printf "compare: %d wall-time regression(s) beyond %.1fx\n"
      !regressions !factor;
    exit 1
  end
  else print_endline "compare: no wall-time regressions"
