(* The pure core of the baseline regression gate, split out of the
   compare executable so the classification and judgement rules are unit
   tested in the bench runtest.

   Metric keys fall into four classes:
   - latency quantiles ([_p50]/[_p99] suffixes) are *informational*:
     reported side by side but never gated — tail latency on a shared CI
     runner is too noisy to fail a build on;
   - rates ([_rate] suffix, values in [0, 1]) are gated on *absolute*
     drift: a shed rate moving from 0.3 to 0.9 is a behaviour change
     regardless of machine speed, while ratio-gating a near-zero rate
     would be meaningless;
   - wall-clock times (the "seconds" family) are gated on a ratio with a
     noise floor, as before;
   - everything else (counters, sizes, speedup ratios) is skipped — those
     gate correctness elsewhere. *)

type gate =
  | Time  (** ratio-gated wall-clock seconds *)
  | Rate  (** absolute-drift-gated fraction in [0, 1] *)
  | Info  (** reported, never gated *)
  | Skip  (** not compared *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let is_time_key k =
  k = "seconds"
  || Filename.check_suffix k "_seconds"
  || contains_substring k "_s_n"

let gate_of_key k =
  if Filename.check_suffix k "_p50" || Filename.check_suffix k "_p99" then
    Info
  else if Filename.check_suffix k "_qps" then Info
  else if Filename.check_suffix k "_rate" then Rate
  else if is_time_key k then Time
  else Skip

type judgement =
  | Pass
  | Sub_floor  (** both sides under the noise floor; not judged *)
  | Regression of string  (** human-readable reason *)

(* [floor] applies to Time only; [rate_tol] is the absolute drift a Rate
   key may show before failing. *)
let judge ~factor ~floor ~rate_tol gate ~fresh ~base =
  match gate with
  | Skip | Info -> Pass
  | Time ->
    if fresh <= floor && base <= floor then Sub_floor
    else
      let ratio = fresh /. Float.max base 1e-9 in
      if ratio > factor then
        Regression (Printf.sprintf "%.2fx slower than baseline" ratio)
      else Pass
  | Rate ->
    let drift = Float.abs (fresh -. base) in
    if drift > rate_tol then
      Regression
        (Printf.sprintf "rate drifted by %.2f (tolerance %.2f)" drift rate_tol)
    else Pass

(* A line of the flat writer:      "key": value[,]  *)
let parse_line line =
  let line = String.trim line in
  let line =
    if String.length line > 0 && line.[String.length line - 1] = ',' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match String.index_opt line ':' with
  | None -> None
  | Some colon -> (
    let k = String.trim (String.sub line 0 colon) in
    let v =
      String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
    in
    if String.length k < 2 || k.[0] <> '"' || k.[String.length k - 1] <> '"'
    then None
    else
      let key = String.sub k 1 (String.length k - 2) in
      match float_of_string_opt v with
      | Some f -> Some (key, f)
      | None -> None)

let read_metrics path =
  let ic = open_in path in
  let out = ref [] in
  (try
     while true do
       match parse_line (input_line ic) with
       | Some (("id" : string), _) | None -> ()
       | Some kv -> out := kv :: !out
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !out

let bench_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 11
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare
