(* The experiment harness.

   The paper (Grohe & Lindner, PODS 2019) is a theory paper: its only
   figure is Fig. 1, the truncation picture behind Proposition 6.1, and it
   has no tables.  Following DESIGN.md Section 6, this harness regenerates
   Fig. 1's quantitative content and turns every theorem with measurable
   content into a printed table whose numbers must come out with the shape
   the theorem predicts.  EXPERIMENTS.md records paper-vs-measured for
   each experiment id.

   Run everything:        dune exec bench/main.exe
   One experiment:        dune exec bench/main.exe -- --only E1
   Skip wall-clock part:  dune exec bench/main.exe -- --no-timing
   CI smoke run:          dune exec bench/main.exe -- --smoke
                          (fast subset, reduced sample counts, no timing) *)

(* Set by --smoke before any experiment runs; heavy experiments consult it
   to shrink their sample counts so the whole smoke run stays in CI-scale
   seconds. *)
let smoke = ref false

let i n = Value.Int n
let q = Rational.of_ints
let parse = Fo_parse.parse_exn
let r_fact k = Fact.make "R" [ i k ]

let header id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n";
  flush stdout

let row fmt = Printf.kfprintf (fun oc -> flush oc) stdout fmt

(* --json <dir>: after the run, write one BENCH_<id>.json per executed
   experiment holding its wall time plus any metrics the experiment
   recorded with [metric].  Hand-rolled writer — the sealed environment
   has no JSON package, and flat string/float pairs need none. *)
let json_dir : string option ref = ref None
let metrics : (string, (string * float) list ref) Hashtbl.t = Hashtbl.create 32

let metric id key value =
  match Hashtbl.find_opt metrics id with
  | Some l -> l := (key, value) :: !l
  | None -> Hashtbl.add metrics id (ref [ (key, value) ])

let write_json dir =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Hashtbl.iter
    (fun id kvs ->
      let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id) in
      let oc = open_out path in
      let fields =
        List.map
          (fun (k, v) -> Printf.sprintf "    %S: %.17g" k v)
          (List.rev !kvs)
      in
      Printf.fprintf oc "{\n  \"id\": %S,\n  \"metrics\": {\n%s\n  }\n}\n" id
        (String.concat ",\n" fields);
      close_out oc)
    metrics

(* Shared sources *)
let geo_source () =
  Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
    ~facts:r_fact ()

let telescoping_source () =
  Fact_source.telescoping ~mass:(q 9 10) ~facts:r_fact ()

let log_slow_source () =
  (* p_i = c / ((i+2) ln^2 (i+2)) as exact dyadic approximations from
     below; tail certificate from the integral test (Series.log_slow). *)
  let series = Series.log_slow ~scale:0.2 () in
  Fact_source.make ~name:"log-slow(0.2)"
    ~enum:
      (Seq.map
         (fun k ->
           (r_fact k, Rational.of_float_exn (Series.term series k)))
         (Seq.ints 0))
    ~tail:(fun n -> Series.tail series n)
    ()

(* The paper's Example 5.7 completion, reused across experiments. *)
let ex57_ti =
  Ti_table.create
    [
      (Fact.make "R" [ Value.Str "A"; i 1 ], q 8 10);
      (Fact.make "R" [ Value.Str "B"; i 1 ], q 4 10);
      (Fact.make "R" [ Value.Str "B"; i 2 ], q 5 10);
      (Fact.make "R" [ Value.Str "C"; i 3 ], q 9 10);
    ]

let ex57_news () =
  let names = [| "A"; "B"; "C"; "D" |] in
  let orig = Fact.Set.of_list (Ti_table.support ex57_ti) in
  let all =
    Seq.concat_map
      (fun idx ->
        let x = names.(idx mod 4) and iv = (idx / 4) + 1 in
        let f = Fact.make "R" [ Value.Str x; i iv ] in
        if Fact.Set.mem f orig then Seq.empty
        else Seq.return (f, Rational.pow Rational.half iv))
      (Seq.ints 0)
  in
  Fact_source.make ~name:"ex57-2^-i" ~enum:all
    ~tail:(fun n -> Some (8.0 *. (0.5 ** float_of_int (n / 4))))
    ()

(* ------------------------------------------------------------------ *)
(* E1 - Fig. 1 / Prop 6.1: measured additive error vs the eps guarantee *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Fig. 1 / Prop 6.1: additive error of truncation vs guarantee";
  let src = geo_source () in
  (* Ground truth P(exists x. R(x)) = 1 - prod_{i>=1} (1 - 2^-i): compute
     a near-limit reference with a very deep prefix. *)
  let deep = 200 in
  let truth =
    1.0
    -. List.fold_left
         (fun acc (_, p) -> acc *. (1.0 -. Rational.to_float p))
         1.0
         (Fact_source.prefix src deep)
  in
  let phi = parse "exists x. R(x)" in
  row "  query: exists x. R(x); true P(Q) = %.9f\n" truth;
  row "  %-10s %-6s %-14s %-14s %-12s %s\n" "eps" "n(eps)" "estimate"
    "measured-err" "err <= eps" "certified bounds";
  List.iter
    (fun eps ->
      let r = Approx_eval.boolean src ~eps phi in
      let est = Rational.to_float r.Approx_eval.estimate in
      let err = Float.abs (est -. truth) in
      row "  %-10g %-6d %-14.9f %-14.3e %-12b [%.6f, %.6f]\n" eps
        r.Approx_eval.n_used est err (err <= eps)
        (Interval.lo r.Approx_eval.bounds)
        (Interval.hi r.Approx_eval.bounds))
    [ 0.2; 0.1; 0.05; 0.01; 0.001; 0.0001 ];
  (* a second query of quantifier rank 2 *)
  let phi2 = parse "forall x. R(x) -> (exists y. R(y) & x = y)" in
  let r = Approx_eval.boolean src ~eps:0.01 phi2 in
  row "  rank-2 query tautology check: estimate %s (expected 1)\n"
    (Rational.to_string r.Approx_eval.estimate)

(* ------------------------------------------------------------------ *)
(* E2 - truncation budget n(eps) across decay regimes *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "n(eps) growth: geometric vs quadratic vs logarithmic decay";
  let sources =
    [ geo_source (); telescoping_source (); log_slow_source () ]
  in
  row "  %-12s" "eps";
  List.iter (fun s -> row "%-20s" (Fact_source.name s)) sources;
  row "\n";
  List.iter
    (fun eps ->
      row "  %-12g" eps;
      List.iter
        (fun s ->
          match Approx_eval.truncation_point ~max_n:(1 lsl 22) s ~eps with
          | Some n -> row "%-20d" n
          | None -> row "%-20s" ">2^22 (too slow)")
        sources;
      row "\n")
    [ 0.2; 0.1; 0.01; 0.001; 0.0001 ];
  row "  shape: geometric ~ log(1/eps); telescoping ~ 1/eps; log-slow explodes\n"

(* ------------------------------------------------------------------ *)
(* E3 - Lemma 4.3 / Thm 4.8: the partition function is exactly 1 *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Lemma 4.3: sum of world measures is exactly 1 (rational arithmetic)";
  let t = Countable_ti.create (geo_source ()) in
  row "  %-4s %-10s %s\n" "n" "#worlds" "sum_{D subseteq first n} P_n({D})";
  List.iter
    (fun n ->
      let s = Countable_ti.partition_prefix_sum t ~n in
      row "  %-4d %-10d %s%s\n" n (1 lsl n) (Rational.to_string s)
        (if Rational.is_one s then "   (exact)" else "   VIOLATION"))
    [ 0; 2; 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* E4 - Cor 4.7 vs Example 3.3: expected instance size *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Cor 4.7: TI expected size finite; Example 3.3 diverges";
  let t = Countable_ti.create (geo_source ()) in
  row "  countable TI source %s:\n" (Fact_source.name (Countable_ti.source t));
  List.iter
    (fun n ->
      let lo, hi = Countable_ti.expected_size_bounds t ~n in
      row "    E(S) bounds with %3d terms: [%.8f, %.8f]\n" n lo hi)
    [ 5; 10; 20; 40 ];
  let g = Prng.create ~seed:4242 () in
  let mean =
    Size_dist.mean_size (fun _ -> Countable_ti.sample t g) ~samples:20_000
  in
  row "    sampled mean size (20k draws): %.4f (analytic: 1.0)\n" mean;
  row "  Example 3.3 (non-TI): truncated E(S) over the first N worlds:\n";
  List.iter
    (fun n ->
      row "    N = %2d: E(S) >= %s\n" n
        (Rational.to_decimal_string ~digits:2
           (Size_dist.example_3_3_expected_size_prefix n)))
    [ 5; 10; 15; 20; 25 ];
  row "    (diverges: no TI representation can exist - Prop 4.9's witness)\n"

(* ------------------------------------------------------------------ *)
(* E5 - Lemma 4.6 / Borel-Cantelli: divergent marginals are impossible *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5" "Thm 4.8 necessity: divergent marginals rejected; sampled prefix blowup";
  let verdict name make_source =
    match make_source () with
    | exception Invalid_argument msg ->
      row "  %-22s REJECTED: %s\n" name
        (String.sub msg 0 (Stdlib.min 60 (String.length msg)))
    | (_ : Countable_ti.t) -> row "  %-22s accepted\n" name
  in
  verdict "geometric(1/2,1/2)" (fun () -> Countable_ti.create (geo_source ()));
  verdict "telescoping(9/10)" (fun () ->
      Countable_ti.create (telescoping_source ()));
  verdict "harmonic (divergent)" (fun () ->
      Countable_ti.create
        (Fact_source.divergent_harmonic ~scale:Rational.one ~facts:r_fact ()));
  (* Empirical Borel-Cantelli: draw Bernoulli prefixes of the harmonic
     series; the number of included facts grows with the prefix length
     (so no a.s.-finite world exists). *)
  row "  harmonic prefix draws (facts included among first n):\n";
  let g = Prng.create ~seed:9 () in
  List.iter
    (fun n ->
      let count = ref 0 in
      for k = 0 to n - 1 do
        if Prng.bernoulli g (1.0 /. float_of_int (k + 1)) then incr count
      done;
      row "    n = %-7d included ~ %d (ln n = %.1f)\n" n !count
        (log (float_of_int n)))
    [ 100; 1000; 10_000; 100_000 ]

(* ------------------------------------------------------------------ *)
(* E6 - Thm 4.15: BID laws *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6" "Thm 4.15: countable BID - exclusivity exact, cross-block independence";
  let blocks =
    Seq.map
      (fun k ->
        let p = Rational.pow Rational.half (k + 2) in
        Countable_bid.block_finite
          ~id:(Printf.sprintf "B%d" k)
          [ (Fact.make "T" [ i k; i 0 ], p); (Fact.make "T" [ i k; i 1 ], p) ])
      (Seq.ints 0)
  in
  let b =
    Countable_bid.create ~name:"geo-bid" ~blocks
      ~tail:(fun n -> Some (Float.succ (0.5 ** float_of_int (n + 1))))
      ()
  in
  let samples = 50_000 in
  let violations =
    Sampler.exclusivity_violations ~seed:5 ~samples
      (fun g -> Countable_bid.sample b g)
      (fun f ->
        match Fact.args f with
        | Value.Int k :: _ -> Some (string_of_int k)
        | _ -> None)
  in
  row "  in-block exclusivity violations over %d samples: %d (must be 0)\n"
    samples violations;
  let f00 = Fact.make "T" [ i 0; i 0 ] and f10 = Fact.make "T" [ i 1; i 0 ] in
  let gap =
    Sampler.independence_gap ~seed:6 ~samples
      (fun g -> Countable_bid.sample b g)
      f00 f10
  in
  row "  cross-block |P(f,g) - P(f)P(g)| = %.5f (sampling noise scale %.5f)\n"
    gap
    (1.0 /. sqrt (float_of_int samples));
  let m00 =
    Sampler.estimate_marginal ~seed:7 ~samples
      (fun g -> Countable_bid.sample b g)
      f00
  in
  row "  marginal T(0,0): sampled %.4f vs exact 0.25\n" m00;
  (* truncation agrees with the finite BID table *)
  let table = Countable_bid.truncate b ~n_blocks:6 ~alts_per_block:2 in
  row "  finite truncation: %d blocks, partition sum = %s\n"
    (Bid_table.num_blocks table)
    (Rational.to_string
       (Seq.fold_left
          (fun acc (_, p) -> Rational.add acc p)
          Rational.zero (Bid_table.worlds table)))

(* ------------------------------------------------------------------ *)
(* E7 - Thm 5.5: the completion condition, exactly *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Thm 5.5: completion condition P'(A|Omega) = P(A), exact gaps";
  let g = Prng.create ~seed:77 () in
  let random_ti k seedless =
    ignore seedless;
    Ti_table.create
      (List.init k (fun j ->
           (Fact.make "F" [ i j ], q (1 + Prng.int g 8) 10)))
  in
  row "  %-28s %-10s %s\n" "original (random TI)" "n(trunc)" "max world gap";
  List.iter
    (fun k ->
      let ti = random_ti k () in
      let c = Completion.complete_ti ti (ex57_news ()) in
      List.iter
        (fun n ->
          row "  %-28s %-10d %s\n"
            (Printf.sprintf "%d facts" k)
            n
            (Rational.to_string (Completion.completion_condition_gap c ~n)))
        [ 0; 2; 4 ])
    [ 1; 3; 5 ];
  row "  (all gaps exactly 0: conditioning the completion on old worlds\n";
  row "   restores the original measure, per Theorem 5.5)\n"

(* ------------------------------------------------------------------ *)
(* E8 - Example 5.7 worked numbers *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "Example 5.7: closed vs open answers on the paper's table";
  let c = Completion.complete_ti ex57_ti (ex57_news ()) in
  let show qs =
    let phi = parse qs in
    let closed = Query_eval.boolean ex57_ti phi in
    let opened = Completion.query_prob c ~eps:0.005 phi in
    row "  %-50s closed %-8s open %-8s (n=%d)\n" qs
      (Rational.to_decimal_string ~digits:4 closed)
      (Rational.to_decimal_string ~digits:4 opened.Approx_eval.estimate)
      opened.Approx_eval.n_used
  in
  show "exists x. R(\"A\", x)";
  show "exists x. R(\"D\", x)";
  show "exists x y. R(\"A\", x) & R(\"A\", y) & x != y";
  show "R(\"D\", 2) & R(\"A\", 2)";
  show "forall x. R(\"B\", x) -> R(\"A\", x)";
  row "  every finite Boolean combination of distinct facts now has P > 0\n"

(* ------------------------------------------------------------------ *)
(* E9 - Prop 6.2: additive fine, multiplicative impossible *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Prop 6.2 witness: additive error bounded, multiplicative unbounded";
  let phi = parse "exists x. R(x)" in
  let eps = 0.01 in
  row "  eps = %g; witness family p(R/S(k)) = 2^-k, R at k = t0\n" eps;
  row "  %-6s %-14s %-14s %-12s %s\n" "t0" "true P(Q)" "estimate"
    "additive-err" "multiplicative ratio";
  List.iter
    (fun t0 ->
      let s = Approx_eval.prop62_witness ~first_acceptance:t0 ~horizon:80 in
      let truth = Rational.to_float (Rational.pow Rational.half t0) in
      let r = Approx_eval.boolean s ~eps phi in
      let est = Rational.to_float r.Approx_eval.estimate in
      let mult =
        if est > 0.0 then Printf.sprintf "%.3f" (truth /. est)
        else "infinite (est = 0, truth > 0)"
      in
      row "  %-6d %-14.3e %-14.3e %-12.3e %s\n" t0 truth est
        (Float.abs (est -. truth))
        mult)
    [ 1; 3; 6; 10; 20; 40 ];
  row "  any fixed-budget evaluator misses deep acceptances: no algorithm\n";
  row "  can bound the ratio (Prop 6.2's computability argument)\n"

(* ------------------------------------------------------------------ *)
(* E10 - claim (∗) tightness *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Claim (*): prod(1-p_i) >= exp(-3/2 sum p_i) - measured gap";
  let families =
    [
      Series.geometric ~first:0.4 ~ratio:0.5 ();
      Series.zeta2 ~scale:0.4 ();
      Series.of_list [ 0.49; 0.4; 0.3; 0.2; 0.1 ];
      Series.geometric ~first:0.01 ~ratio:0.9 ();
    ]
  in
  row "  %-22s %-14s %-14s %s\n" "series" "true product"
    "(*) lower bnd" "ratio (>= 1)";
  List.iter
    (fun s ->
      let n = 60 in
      let prod = Series.product_compl_prefix s n in
      let star = exp (-1.5 *. Series.partial_sum s n) in
      (match Series.star_bound_gap s n with
       | Some gap -> row "  %-22s %-14.8f %-14.8f %.4f\n" (Series.name s) prod star gap
       | None -> row "  %-22s (term >= 1/2: inapplicable)\n" (Series.name s)))
    families;
  row "  bound loosest when terms approach 1/2, near-tight for small p\n"

(* ------------------------------------------------------------------ *)
(* E11 - motivation: sensors *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11" "Intro scenario: closed world 0 vs open world small-positive, monotone";
  let observed =
    Ti_table.create
      [
        (Fact.make "Temp" [ i 1; i 201 ], q 6 10);
        (Fact.make "Temp" [ i 1; i 202 ], q 5 10);
        (Fact.make "Temp" [ i 2; i 205 ], q 6 10);
        (Fact.make "Temp" [ i 2; i 206 ], q 5 10);
      ]
  in
  let news =
    Fact_source.of_list ~name:"sensor-news"
      (List.map
         (fun (o, t, d) ->
           (Fact.make "Temp" [ i o; i t ], Rational.pow Rational.half d))
         [
           (1, 203, 3); (1, 200, 3); (2, 204, 3); (2, 207, 3);
           (1, 204, 4); (1, 199, 4); (2, 203, 4); (2, 208, 4);
           (1, 205, 5); (1, 198, 5); (2, 202, 5); (2, 209, 5);
           (1, 206, 6); (1, 197, 6); (2, 201, 6); (2, 210, 6);
         ])
  in
  let c = Completion.complete_ti observed news in
  row "  %-34s %-10s %s\n" "event" "closed" "open";
  List.iter
    (fun qs ->
      let phi = parse qs in
      let closed = Query_eval.boolean observed phi in
      let opened = Completion.query_prob c ~eps:0.001 phi in
      row "  %-34s %-10s %s\n" qs
        (Rational.to_decimal_string ~digits:4 closed)
        (Rational.to_decimal_string ~digits:6 opened.Approx_eval.estimate))
    [
      "Temp(1, 203)";
      "Temp(1, 199)";
      "Temp(1, 206)";
      "Temp(1, 206) & Temp(2, 205)";
    ];
  row "  monotone: near-gap (20.3) > distant (19.9) > extreme (20.6);\n";
  row "  the closed world flattens all three to probability 0\n"

(* ------------------------------------------------------------------ *)
(* E14 - Prop 4.9 shape: Fact 2.1 bound on FO views *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14" "Prop 4.9 shape: FO-view answers bounded by adom (Fact 2.1)";
  let src =
    Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
      ~facts:(fun k -> Fact.make "E" [ i k; i (k + 1) ])
      ()
  in
  let cti = Countable_ti.create src in
  let g = Prng.create ~seed:14 () in
  let phi = parse "exists y. E(x, y) | E(y, x)" in
  let worst = ref 0.0 in
  let samples = 500 in
  for _ = 1 to samples do
    let w = Countable_ti.sample cti g in
    if not (Instance.is_empty w) then begin
      let _, answers = Fo_eval.answers w phi in
      let ratio =
        float_of_int (Tuple.Set.cardinal answers)
        /. float_of_int (List.length (Instance.active_domain w))
      in
      if ratio > !worst then worst := ratio
    end
  done;
  row "  max |phi(D)| / |adom(D)| over %d TI samples: %.2f (Fact 2.1: <= 1)\n"
    samples !worst;
  row "  Example 3.3 truncated E(S): N=10 -> %s, N=20 -> %s (unbounded)\n"
    (Rational.to_decimal_string ~digits:1
       (Size_dist.example_3_3_expected_size_prefix 10))
    (Rational.to_decimal_string ~digits:1
       (Size_dist.example_3_3_expected_size_prefix 20));
  row "  a TI PDB + FO view can never reproduce that growth (Prop 4.9)\n"

(* ------------------------------------------------------------------ *)
(* E12/E13 - wall-clock ablations via Bechamel *)
(* ------------------------------------------------------------------ *)

let make_wide_ti k =
  Ti_table.create
    (List.concat
       (List.init k (fun j ->
            [
              (Fact.make "R" [ i j ], q 1 3);
              (Fact.make "S" [ i j ], q 1 4);
            ])))

let run_bechamel tests =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  (* stabilize:false — the GC-stabilization loop never settles for the
     allocation-heavy rational engines and would hang the harness. *)
  (* limit 40: the heavyweight bodies (world enumeration, 1000-sample MC)
     cost tens of milliseconds per run, so a large sample count would take
     minutes without changing the ns/run verdicts we print. *)
  let cfg =
    Benchmark.cfg ~limit:40 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  print_string "  (measuring...)\n";
  flush stdout;
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] -> row "  %-44s %12.1f ns/run\n" name t
      | _ -> row "  %-44s (no estimate)\n" name)
    results;
  flush stdout

let e12 () =
  header "E12" "Engine ablation (D2): enumeration vs BDD vs safe plan vs MC";
  let phi_safe = parse "exists x. R(x) & S(x)" in
  let phi_hard = parse "exists x y. (R(x) & S(y)) | (R(y) & !S(x))" in
  let small = make_wide_ti 6 in
  let large = make_wide_ti 60 in
  let open Bechamel in
  run_bechamel
    (Test.make_grouped ~name:"engines"
       [
         Test.make ~name:"enum k=6 (2^12 worlds)"
           (Staged.stage (fun () -> Query_eval.boolean_enum small phi_safe));
         Test.make ~name:"bdd-rational k=6"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_rational small phi_safe));
         Test.make ~name:"bdd-float k=6"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_float small phi_safe));
         Test.make ~name:"safe-plan k=6"
           (Staged.stage (fun () -> Query_eval.boolean_safe small phi_safe));
         Test.make ~name:"bdd-float k=60"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_float large phi_safe));
         Test.make ~name:"safe-plan k=60"
           (Staged.stage (fun () -> Query_eval.boolean_safe large phi_safe));
         Test.make ~name:"mc-1000 k=60"
           (Staged.stage (fun () ->
                Query_eval.boolean_mc ~samples:1000 large phi_safe));
         Test.make ~name:"karp-luby-1000 k=60"
           (Staged.stage (fun () ->
                Query_eval.boolean_karp_luby ~samples:1000 large phi_safe));
         Test.make ~name:"bdd-float k=6 non-hierarchical"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_float small phi_hard));
       ]);
  row "  expected shape: safe-plan < bdd-float << enum; safe-plan scales\n";
  row "  linearly in k while enumeration is infeasible past ~20 facts\n"

let e13 () =
  header "E13" "Carrier ablation (D1): float vs interval vs exact rational";
  let ti = make_wide_ti 40 in
  let phi = parse "exists x. R(x) & S(x)" in
  let open Bechamel in
  run_bechamel
    (Test.make_grouped ~name:"carriers"
       [
         Test.make ~name:"wmc float"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_float ti phi));
         Test.make ~name:"wmc interval"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_interval ti phi));
         Test.make ~name:"wmc rational (exact)"
           (Staged.stage (fun () -> Query_eval.boolean_bdd_rational ti phi));
       ]);
  row "  exactness cost: rational pays bignum gcd per op; interval ~2x float\n"

let ablate_bdd_order () =
  header "D4" "BDD variable order ablation: interleaved vs separated";
  let k = 12 in
  let e =
    Bool_expr.disj
      (List.init k (fun j -> Bool_expr.and2 (Bool_expr.var j) (Bool_expr.var (j + k))))
  in
  let natural = Bdd.manager () in
  let interleaved =
    Bdd.manager ~order:(fun v -> if v < k then 2 * v else (2 * (v - k)) + 1) ()
  in
  row "  (x0&x%d)|...: natural order size %d, interleaved order size %d\n" k
    (Bdd.size (Bdd.of_expr natural e))
    (Bdd.size (Bdd.of_expr interleaved e));
  row "  (the classical exponential/linear separation)\n"

(* ------------------------------------------------------------------ *)
(* E15 - approximate engines: truncation(+exact) vs Karp-Luby vs MC      *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15"
    "Approximate engines on a rare event: exact/KL relative error vs plain MC";
  (* A conjunctive rare event: P(R(0) & S(0)) = 1/50 * 1/50 = 4e-4 on a
     wide table.  Plain MC at n samples sees ~n*4e-4 hits; Karp-Luby's
     relative error is independent of the probability. *)
  let ti =
    Ti_table.create
      (List.concat
         (List.init 40 (fun j ->
              [
                (Fact.make "R" [ i j ], q 1 50);
                (Fact.make "S" [ i j ], q 1 50);
              ])))
  in
  let phi = parse "exists x. R(x) & S(x)" in
  let exact = Rational.to_float (Query_eval.boolean ti phi) in
  row "  exact P(Q) (lineage+BDD)      = %.8f
" exact;
  List.iter
    (fun samples ->
      let mc = Query_eval.boolean_mc ~seed:1 ~samples ti phi in
      let kl =
        match Query_eval.boolean_karp_luby ~seed:1 ~samples ti phi with
        | Some r -> r
        | None -> failwith "monotone query"
      in
      let rel x = Float.abs (x -. exact) /. exact in
      row
        "  n=%-7d plain-MC est %.6f (rel err %5.1f%%)   Karp-Luby est %.6f          (rel err %5.1f%%)
"
        samples mc.Query_eval.estimate
        (100. *. rel mc.Query_eval.estimate)
        kl.Query_eval.estimate
        (100. *. rel kl.Query_eval.estimate))
    [ 100; 1000; 10000 ];
  let ad = Query_eval.boolean_mc_adaptive ~seed:2 ~eps:0.005 ~delta:0.05 ti phi in
  row "  adaptive MC (eps 0.005, delta 0.05): %d samples, est %.6f
"
    ad.Query_eval.samples ad.Query_eval.estimate;
  row "  shape: KL relative error ~ 1/sqrt(n) regardless of P(Q); plain MC
";
  row "  needs ~1/P(Q) samples per hit (FPRAS vs additive-only sampling)
"

(* ------------------------------------------------------------------ *)
(* E16 - batch truncation vs incremental anytime evaluation            *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16"
    "Batch truncation vs incremental anytime (shared BDD manager across steps)";
  (* Two query shapes: a pure existential chain exercises the delta path
     (only the fresh ground instances are compiled per step); the Boolean
     combination of quantified sentences is opaque to the shape analysis,
     so every step recompiles — but inside the session's one manager,
     where the apply cache already holds every sub-function of the
     previous step's lineage. *)
  let queries =
    [
      ("exists x. R(x)", "delta path");
      ("(exists x. R(x)) & !(forall y. R(y))", "recompile path");
    ]
  in
  let sources =
    [
      ((geo_source : unit -> Fact_source.t), 0.001);
      (* Tighter eps on the quadratic source sends the exact-rational
         batch engine into huge-denominator territory; the anytime side
         would not mind (interval carrier), but the comparison must run
         both. *)
      (telescoping_source, 0.01);
      (log_slow_source, 0.05);  (* log decay: eps 0.001 needs n ~ e^300 *)
    ]
  in
  List.iter
    (fun (mk, eps) ->
      List.iter
        (fun (qtext, mode) ->
          let phi = parse qtext in
          let bsrc = mk () in
          let r = Approx_eval.boolean ~max_n:(1 lsl 22) bsrc ~eps phi in
          row "\n  source %-20s eps %-8g query %s  [%s]\n"
            (Fact_source.name bsrc) eps qtext mode;
          row "    batch:   n=%-6d est=%.6f certified [%.6f, %.6f]\n"
            r.Approx_eval.n_used
            (Rational.to_float r.Approx_eval.estimate)
            (Interval.lo r.Approx_eval.bounds)
            (Interval.hi r.Approx_eval.bounds);
          let sess = Anytime.create ~eps ~max_n:(1 lsl 22) (mk ()) phi in
          let reason, steps = Anytime.run sess in
          row "    %-5s %-8s %-10s %-10s %-6s %-10s %s\n" "step" "n" "width"
            "bdd-size" "mode" "apply-hit" "nodes-alloc";
          List.iter
            (fun (s : Anytime.step) ->
              row "    %-5d %-8d %-10.2e %-10d %-6s %-10.0f %.0f\n"
                s.Anytime.index s.Anytime.n s.Anytime.width s.Anytime.bdd_size
                (if s.Anytime.incremental then "delta" else "full")
                (Stats.find s.Anytime.stats "bdd.apply.hit")
                (Stats.find s.Anytime.stats "bdd.nodes_allocated"))
            steps;
          let carried_hits =
            List.fold_left
              (fun acc (s : Anytime.step) ->
                if s.Anytime.index > 1 then
                  acc +. Stats.find s.Anytime.stats "bdd.apply.hit"
                else acc)
              0.0 steps
          in
          let final_width =
            match Anytime.last_step sess with
            | Some s -> s.Anytime.width
            | None -> nan
          in
          row
            "    anytime: stopped (%s) at n=%d, width %.2e (target %.2e), \
             %d manager nodes, %.0f apply-cache hits carried past step 1\n"
            (Anytime.stop_reason_to_string reason)
            (Anytime.current_n sess) final_width (2.0 *. eps)
            (Anytime.node_count sess) carried_hits)
        queries)
    sources

(* ------------------------------------------------------------------ *)
(* E17 - domain-parallel Monte-Carlo engine                            *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17"
    "Mc_eval: domain scaling, bit-identity, and cross-engine agreement";
  let samples = if !smoke then 20_000 else 200_000 in
  let space = Mc_eval.Ti (Countable_ti.create (geo_source ())) in
  let phi = parse "exists x. R(x)" in
  (* 1. Throughput vs domain count.  Speedup is bounded by physical
     cores (a 1-core container shows ~1x); the statistical result must
     not move at all: batch b draws from substream(seed, b) into its own
     slot regardless of which domain claims it. *)
  row "  host: %d recommended domains; workload: %d worlds of %s\n"
    (Domain.recommended_domain_count ())
    samples "exists x. R(x) on geometric(1/2,1/2)";
  let time_run d =
    let t0 = Unix.gettimeofday () in
    let r = Mc_eval.boolean ~domains:d ~seed:17 ~samples space phi in
    (r, Unix.gettimeofday () -. t0)
  in
  let base, base_t = time_run 1 in
  row "  %-8s %-10s %-9s %-12s %s\n" "domains" "seconds" "speedup" "estimate"
    "bit-identical to 1-domain run";
  row "  %-8d %-10.3f %-9s %-12.6f %s\n" 1 base_t "1.00" base.Mc_eval.estimate
    "-";
  List.iter
    (fun d ->
      let r, t = time_run d in
      let same =
        r.Mc_eval.hits = base.Mc_eval.hits
        && Interval.equal r.Mc_eval.bounds base.Mc_eval.bounds
        && Interval.equal r.Mc_eval.wilson base.Mc_eval.wilson
        && r.Mc_eval.width_trajectory = base.Mc_eval.width_trajectory
      in
      row "  %-8d %-10.3f %-9.2f %-12.6f %b\n" d t (base_t /. t)
        r.Mc_eval.estimate same)
    [ 2; 4 ];
  (* 2. Agreement with the exact engines on the E1 / E16 workloads: the
     99% MC interval must contain the truncation engine's estimate and
     intersect the anytime session's certified enclosure. *)
  row "\n  %-42s %-22s %-10s %s\n" "query (99% MC interval)" "interval"
    "has exact" "meets anytime";
  List.iter
    (fun qtext ->
      let phi = parse qtext in
      let mc =
        Mc_eval.boolean ~seed:18 ~samples ~confidence:0.99 space phi
      in
      let exact =
        Rational.to_float
          (Approx_eval.boolean (geo_source ()) ~eps:0.001 phi)
            .Approx_eval.estimate
      in
      let sess = Anytime.create ~eps:0.001 (geo_source ()) phi in
      ignore (Anytime.run sess);
      let anytime_bounds =
        match Anytime.last_step sess with
        | Some s -> s.Anytime.bounds
        | None -> Interval.make 0.0 1.0
      in
      row "  %-42s [%.6f, %.6f]   %-10b %b\n" qtext
        (Interval.lo mc.Mc_eval.bounds)
        (Interval.hi mc.Mc_eval.bounds)
        (Interval.contains mc.Mc_eval.bounds exact)
        (Interval.intersect mc.Mc_eval.bounds anytime_bounds <> None))
    [
      "exists x. R(x)";
      "forall x. R(x) -> (exists y. R(y) & x = y)";
      "(exists x. R(x)) & !(forall y. R(y))";
    ]

(* ------------------------------------------------------------------ *)
(* E18 - resource-governed supervisor under faults                     *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18"
    "Robust_eval: enclosure width vs budget and fault rate, degradation path";
  let phi = parse "exists x. R(x)" in
  let limit = 1.0 -. 0.2887880951 in
  let eps = 0.005 in
  (* Virtual clock: [units] of work define the whole allowance, so every
     row is bit-reproducible and independent of the host. *)
  let budget_of units =
    Budget.create ~clock:(Budget.Virtual 10_000)
      ~timeout:(float_of_int units /. 10_000.0)
      ()
  in
  let run ?faults units =
    let src =
      match faults with
      | None -> geo_source ()
      | Some cfg -> Faulty_source.wrap cfg (geo_source ())
    in
    Robust_eval.query ~budget:(budget_of units) ~eps ~mc_samples:20_000 ~seed:3
      src phi
  in
  (* 1. Shrinking budgets, clean vs a moderately hostile fault schedule:
     the answer degrades from a converged certificate to a wide partial
     enclosure, but stays sound at every size. *)
  row "  %-10s %-12s %-28s %-12s %-28s %s\n" "units" "clean width" "clean stop"
    "fault width" "fault stop" "both sound";
  List.iter
    (fun units ->
      let clean = run units in
      let faulted =
        run ~faults:{ (Faulty_source.default ~seed:5) with stall = 0.0 } units
      in
      let sound a = Interval.contains a.Robust_eval.enclosure limit in
      row "  %-10d %-12.6f %-28s %-12.6f %-28s %b\n" units
        (Interval.width clean.Robust_eval.enclosure)
        clean.Robust_eval.provenance.stopped
        (Interval.width faulted.Robust_eval.enclosure)
        faulted.Robust_eval.provenance.stopped
        (sound clean && sound faulted))
    [ 5; 15; 30; 1_000; 100_000 ];
  (* 2. Rising fault rates at a fixed 1000-unit budget: more retries and
     deeper degradation, never an exception, never an unsound interval. *)
  row "\n  %-10s %-12s %-9s %-28s %s\n" "transient" "width" "retries"
    "stopped" "sound";
  let c_attempts = Stats.counter "robust.retry.attempts" in
  List.iter
    (fun rate ->
      let cfg =
        {
          Faulty_source.none with
          seed = 11;
          transient = rate;
          bad_prob = rate /. 4.0;
          nan_tail = rate /. 2.0;
          tail_blackout = rate /. 2.0;
        }
      in
      let before = Stats.count c_attempts in
      let a = run ~faults:cfg 1_000 in
      row "  %-10.2f %-12.6f %-9d %-28s %b\n" rate
        (Interval.width a.Robust_eval.enclosure)
        (Stats.count c_attempts - before)
        a.Robust_eval.provenance.stopped
        (Interval.contains a.Robust_eval.enclosure limit))
    [ 0.0; 0.2; 0.5; 0.9 ];
  (* 3. Reproducibility: the acceptance criterion's 100 ms virtual
     budget with faults — the whole answer, provenance included, must be
     bit-identical across runs. *)
  let faults = { (Faulty_source.default ~seed:5) with stall = 0.0 } in
  let a1 = Robust_eval.answer_to_string (run ~faults 1_000) in
  let a2 = Robust_eval.answer_to_string (run ~faults 1_000) in
  row "\n  faulted 1000-unit answer bit-identical across runs: %b\n" (a1 = a2);
  row "%s\n"
    (String.concat "\n"
       (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' a1)))

(* ------------------------------------------------------------------ *)
(* E19 - BDD kernel microbenchmark: seed kernel vs packed kernel       *)
(* ------------------------------------------------------------------ *)

(* The workload is the lineage shape exact evaluation actually produces:
   a long independent disjunction of conjunction pairs (the lineage of a
   Boolean two-table join), hardened with an xor parity chain and an ite
   combine so every connective of the kernel sits on the hot path.  The
   identical computation runs on the frozen seed kernel (Bdd_baseline,
   polymorphic hashtable caches, derived ite, left-fold of_expr) and on
   the current kernel; the diagrams are canonical, so the two WMC floats
   must agree bit-for-bit, and the report is the wall-clock ratio plus
   the new kernel's cache and node accounting. *)

(* No weight equals 1/2: a fair variable inside the parity chain would
   pin the whole workload's probability at exactly 0.5 and weaken the
   old-vs-new equality check. *)
let e19_weight v = float_of_int ((v mod 7) + 1) /. 9.0

let e19_pairs ~lo n =
  Bool_expr.Or
    (List.init n (fun idx ->
         let v = 2 * (lo + idx) in
         Bool_expr.And [ Bool_expr.Var v; Bool_expr.Var (v + 1) ]))

let e19 () =
  header "E19" "BDD kernel: packed caches, primitive ite, GC vs seed kernel";
  let n = if !smoke then 400 else 1_000 in
  let reps = if !smoke then 3 else 5 in
  let parity_vars = List.init 24 (fun idx -> 2 * idx) in
  let expr = e19_pairs ~lo:0 n in
  let old_run () =
    let m = Bdd_baseline.manager () in
    let b = Bdd_baseline.of_expr m expr in
    let parity =
      List.fold_left
        (fun acc v -> Bdd_baseline.xor m acc (Bdd_baseline.var m v))
        (Bdd_baseline.of_expr m Bool_expr.False)
        parity_vars
    in
    let r = Bdd_baseline.ite m parity (Bdd_baseline.neg m b) b in
    ( Bdd_baseline.float_probability ~weight:e19_weight r,
      Bdd_baseline.node_count m )
  in
  let new_run () =
    let m = Bdd.manager () in
    let b = Bdd.of_expr m expr in
    let parity =
      List.fold_left
        (fun acc v -> Bdd.xor m acc (Bdd.var m v))
        (Bdd.fls m) parity_vars
    in
    let r = Bdd.ite m parity (Bdd.neg m b) b in
    let p =
      Bdd.fold_prob ~zero:0.0 ~one:1.0
        ~node:(fun v plo phi ->
          let w = e19_weight v in
          (w *. phi) +. ((1.0 -. w) *. plo))
        r
    in
    (p, Bdd.node_count m)
  in
  let timed reps f =
    let t0 = Unix.gettimeofday () in
    let r = ref (f ()) in
    for _ = 2 to reps do
      r := f ()
    done;
    (Unix.gettimeofday () -. t0, !r)
  in
  let c_hit = Stats.counter "bdd.apply.hit" in
  let c_miss = Stats.counter "bdd.apply.miss" in
  let hit0 = Stats.count c_hit and miss0 = Stats.count c_miss in
  let old_t, (old_p, old_nodes) = timed reps old_run in
  let new_t, (new_p, new_nodes) = timed reps new_run in
  let hits = Stats.count c_hit - hit0
  and misses = Stats.count c_miss - miss0 in
  let speedup = old_t /. new_t in
  row "  workload: OR of %d pairs + 24-var parity + ite + wmc, x%d reps\n" n
    reps;
  row "  %-24s %-12s %s\n" "kernel" "seconds" "P(lineage)";
  row "  %-24s %-12.4f %.12g\n" "seed (baseline)" old_t old_p;
  row "  %-24s %-12.4f %.12g\n" "packed + primitive ite" new_t new_p;
  row "  results identical: %b   final nodes old/new: %d/%d\n"
    (abs_float (old_p -. new_p) < 1e-12)
    old_nodes new_nodes;
  row "  speedup: %.2fx (acceptance >= 2x: %b)\n" speedup (speedup >= 2.0);
  row "  op cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  metric "E19" "speedup" speedup;
  metric "E19" "old_seconds" old_t;
  metric "E19" "new_seconds" new_t;
  metric "E19" "final_nodes" (float_of_int new_nodes);
  metric "E19" "bdd.apply.hit" (float_of_int hits);
  metric "E19" "bdd.apply.miss" (float_of_int misses);
  (* Root-aware GC on a long session: recompile a drifting lineage many
     times in one manager, protecting only the current diagram — the
     anytime evaluator's access pattern.  With a GC threshold the live
     count stays around one diagram's size while the allocation series
     keeps climbing; with GC off, every dead intermediate accumulates. *)
  let rounds = if !smoke then 8 else 40 in
  let block = if !smoke then 120 else 400 in
  let session gc_threshold =
    let m = Bdd.manager ~gc_threshold () in
    let cur = ref (Bdd.tru m) in
    Bdd.protect !cur;
    for r = 0 to rounds - 1 do
      let b = Bdd.of_expr m (e19_pairs ~lo:(r * block) block) in
      Bdd.protect b;
      Bdd.release !cur;
      cur := b;
      ignore (Bdd.maybe_gc m)
    done;
    (Bdd.node_count m, Bdd.peak_count m, Bdd.allocated_count m)
  in
  let live_gc, peak_gc, alloc_gc = session (1 lsl 12) in
  let live_off, _, alloc_off = session max_int in
  row "\n  %d-round recompile session, %d pairs/round, one manager:\n" rounds
    block;
  row "  %-24s %-10s %-10s %s\n" "gc" "live" "peak" "allocated";
  row "  %-24s %-10d %-10d %d\n" "threshold 4096" live_gc peak_gc alloc_gc;
  row "  %-24s %-10d %-10d %d\n" "off" live_off live_off alloc_off;
  row "  live bounded under GC: %b\n" (live_gc * 4 < live_off);
  metric "E19" "gc_live" (float_of_int live_gc);
  metric "E19" "gc_peak" (float_of_int peak_gc);
  metric "E19" "gc_allocated" (float_of_int alloc_gc);
  metric "E19" "nogc_live" (float_of_int live_off)

(* ------------------------------------------------------------------ *)
(* E20: enumeration oracle cost curve and fuzzer throughput.  The oracle
   is exponential by design — 2^n worlds — so the numbers that matter are
   where the wall clocks out (why [Oracle.max_worlds] sits at 2^16) and
   how many end-to-end differential cases per second the harness
   sustains, which is what prices the CI smoke run and the nightly
   budget. *)

let e20 () =
  header "E20" "Enumeration oracle cost curve and fuzzer throughput";
  let phi = parse "exists x. R(x)" in
  row "  %-8s %-10s %-12s %s\n" "facts" "worlds" "seconds" "worlds/s";
  List.iter
    (fun n ->
      let facts = List.init n (fun k -> (r_fact k, q 1 3)) in
      let t0 = Unix.gettimeofday () in
      let u = Oracle.of_ti_facts facts in
      ignore (Oracle.query_prob u phi);
      ignore (Oracle.enclosure u phi);
      let dt = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
      let worlds = Oracle.num_worlds u in
      row "  %-8d %-10d %-12.6f %.0f\n" n worlds dt
        (float_of_int worlds /. dt);
      metric "E20" (Printf.sprintf "oracle_s_n%d" n) dt)
    (if !smoke then [ 4; 8; 10 ] else [ 4; 6; 8; 10; 12; 14; 16 ]);
  let cases = if !smoke then 15 else 120 in
  let t0 = Unix.gettimeofday () in
  let r = Fuzzer.run ~seed:42 ~cases () in
  let dt = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  row "\n  fuzzer: %d cases, %d checks in %.2f s (%.1f cases/s, %.1f checks/s)\n"
    r.Fuzzer.cases_run r.Fuzzer.checks_run dt
    (float_of_int r.Fuzzer.cases_run /. dt)
    (float_of_int r.Fuzzer.checks_run /. dt);
  row "  failures: %d (must be 0)\n" (List.length r.Fuzzer.failures);
  metric "E20" "fuzz_cases_per_s" (float_of_int r.Fuzzer.cases_run /. dt);
  metric "E20" "fuzz_checks" (float_of_int r.Fuzzer.checks_run);
  metric "E20" "fuzz_failures" (float_of_int (List.length r.Fuzzer.failures))

(* ------------------------------------------------------------------ *)
(* E21: lifted safe-plan engine vs lineage + BDD on a safe family.  The
   UCQ (exists x. R(x) & S(x)) | (exists y. S(y) & T(y)) has a safe plan
   (UCQ separator, then per-value inclusion-exclusion), so the lifted
   engine runs one O(n) pass of rational arithmetic.  The BDD engine's
   first-occurrence variable order interleaves R_i with S_i but places
   every T_i after the whole R/S block, and OR_i (S_i & T_i) under an
   order that separates the S's from the T's is the textbook
   exponential-OBDD function — the frontier must remember which subset of
   the S's is true.  The BDD cost curve doubles per value while the
   lifted curve stays flat; both engines must agree exactly.  The
   dichotomy router is what spares the BDD engine this query in
   production. *)

let e21 () =
  header "E21" "Lifted UCQ engine vs lineage+BDD on safe queries";
  let table n =
    Ti_table.create
      (List.concat_map
         (fun k ->
           [
             (Fact.make "R" [ i k ], q 1 3);
             (Fact.make "S" [ i k ], q 1 2);
             (Fact.make "T" [ i k ], q 2 5);
           ])
         (List.init n (fun k -> k)))
  in
  let phi = parse "(exists x. R(x) & S(x)) | (exists y. S(y) & T(y))" in
  let sizes = if !smoke then [ 8; 10; 12 ] else [ 10; 12; 14; 16; 18 ] in
  row "  %-8s %-14s %-14s %s\n" "n" "lifted (s)" "bdd (s)" "speedup";
  let last_speedup = ref 0.0 in
  List.iter
    (fun n ->
      let ti = table n in
      let t0 = Unix.gettimeofday () in
      let p_lifted =
        match Query_eval.boolean_safe ti phi with
        | Some p -> p
        | None -> failwith "E21: safe family rejected by the lifted engine"
      in
      let t_lifted = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
      let t0 = Unix.gettimeofday () in
      let p_bdd = Query_eval.boolean_bdd_rational ti phi in
      let t_bdd = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
      if not (Rational.equal p_lifted p_bdd) then
        failwith "E21: lifted and BDD engines disagree";
      let speedup = t_bdd /. t_lifted in
      last_speedup := speedup;
      row "  %-8d %-14.6f %-14.6f %.1fx\n" n t_lifted t_bdd speedup;
      metric "E21" (Printf.sprintf "lifted_s_n%d" n) t_lifted;
      metric "E21" (Printf.sprintf "bdd_s_n%d" n) t_bdd)
    sizes;
  row "  speedup at n=%d: %.1fx (acceptance >= 10x: %b)\n"
    (List.nth sizes (List.length sizes - 1))
    !last_speedup (!last_speedup >= 10.0);
  metric "E21" "speedup" !last_speedup

(* ------------------------------------------------------------------ *)
(* E22: batched evaluation vs the one-at-a-time loop.  The members are
   syntactic variants (alpha-renamings and operand swaps) of one negated
   UCQ: the negation puts it past the safe-plan fragment, and its
   first-occurrence variable order places every T after the S block — the
   same exponential-OBDD frontier as E21.  A one-at-a-time loop pays that
   compilation and its weighted model count once per member; the batch
   compiles it once per shard and answers the remaining members from the
   shared unique table, operation cache, and fold_prob_many memo, so the
   per-query cost collapses to the O(n) lineage grounding.  A few safe
   members ride along to exercise the lifted route.  Everything is exact
   rational arithmetic, so batch answers must equal the sequential
   engine's bit for bit, at every domain count. *)

let e22 () =
  header "E22" "Batch_eval: shared-store batch vs one-at-a-time Query_eval loop";
  let n = if !smoke then 12 else 14 in
  let cache_size = 1 lsl 19 in
  let ti =
    Ti_table.create
      (List.concat_map
         (fun k ->
           [
             (Fact.make "R" [ i k ], q 1 3);
             (Fact.make "S" [ i k ], q 1 2);
             (Fact.make "T" [ i k ], q 2 5);
           ])
         (List.init n (fun k -> k)))
  in
  let hard k =
    (* Alpha-renamed (fresh bound names per member) and, on odd members,
       operand-swapped: distinct syntax, identical Boolean function. *)
    if k mod 2 = 0 then
      parse
        (Printf.sprintf
           "!((exists x%d. R(x%d) & S(x%d)) | (exists y%d. S(y%d) & T(y%d)))"
           k k k k k k)
    else
      parse
        (Printf.sprintf
           "!((exists y%d. T(y%d) & S(y%d)) | (exists x%d. S(x%d) & R(x%d)))"
           k k k k k k)
  in
  let members =
    Array.init 24 (fun k ->
        if k mod 6 = 5 then
          parse (Printf.sprintf "exists z%d. R(z%d) & S(z%d)" k k k)
        else hard k)
  in
  let m = Array.length members in
  let t0 = Unix.gettimeofday () in
  let seq = Array.map (fun phi -> Query_eval.boolean ~cache_size ti phi) members in
  let seq_t = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let t0 = Unix.gettimeofday () in
  let r = Batch_eval.boolean ~cache_size ti members in
  let batch_t = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let agree = ref true in
  Array.iteri
    (fun idx (mem : Rational.t Batch_eval.member) ->
      if not (Rational.equal mem.Batch_eval.prob seq.(idx)) then agree := false)
    r.Batch_eval.members;
  if not !agree then failwith "E22: batch and sequential engines disagree";
  let identical = ref true in
  List.iter
    (fun d ->
      let rd = Batch_eval.boolean ~cache_size ~domains:d ti members in
      Array.iteri
        (fun idx (mem : Rational.t Batch_eval.member) ->
          if
            not
              (Rational.equal mem.Batch_eval.prob
                 r.Batch_eval.members.(idx).Batch_eval.prob)
          then identical := false)
        rd.Batch_eval.members)
    [ 2; 4 ];
  if not !identical then failwith "E22: answers moved with the domain count";
  let speedup = seq_t /. batch_t in
  row "  table: %d values x {R,S,T}; %d members (%d lifted, %d compiled, pad %d)\n"
    n m r.Batch_eval.lifted r.Batch_eval.compiled
    (List.length r.Batch_eval.padding);
  row "  %-28s %-12s %s\n" "evaluator" "seconds" "per query";
  row "  %-28s %-12.4f %.4f\n" "one-at-a-time Query_eval" seq_t
    (seq_t /. float_of_int m);
  row "  %-28s %-12.4f %.4f\n" "Batch_eval (1 shard)" batch_t
    (batch_t /. float_of_int m);
  row "  batch == sequential (exact rationals): %b\n" !agree;
  row "  bit-identical across domains 1/2/4: %b\n" !identical;
  row "  throughput per query: %.1fx (acceptance >= 10x: %b)\n" speedup
    (speedup >= 10.0);
  metric "E22" "speedup" speedup;
  metric "E22" "seq_seconds" seq_t;
  metric "E22" "batch_seconds" batch_t;
  metric "E22" "members" (float_of_int m);
  metric "E22" "compiled" (float_of_int r.Batch_eval.compiled);
  metric "E22" "lifted" (float_of_int r.Batch_eval.lifted)

(* ------------------------------------------------------------------ *)
(* E23: the resident query service under closed-loop load.  Three
   phases against in-process servers on temp Unix sockets:

   - capacity: one client, connect-per-request, a cheap exact query with
     the cache disabled — every request pays the full parse/admit/
     evaluate path.  Reports QPS and client-side latency quantiles
     (informational in the baseline gate: wall-clock on a shared runner).
   - overload: 8 closed-loop client threads against 2 workers and a
     4-deep queue, each request a deliberately expensive open-world
     query (tiny eps forces a deep tail truncation).  Every response
     must be a sound answer or a structured Overloaded — never a hang —
     and the shed rate (rejections + degraded-ladder answers) is the
     gated baseline key: it should sit near saturation regardless of
     machine speed, because the clients are closed-loop.
   - deadline: a bimodal mix — generous deadlines on the cheap query
     (always certified, and the repeats must hit the result cache)
     against 1 ms deadlines on the expensive one (never certified; the
     server returns the best-so-far sound enclosure with the budget
     marked exhausted instead of timing out).  The hit rate is the
     certified fraction, pinned near 1/2 by construction. *)

let e23 () =
  header "E23" "Serve: closed-loop load on the resident query service";
  let open_world_source () =
    Fact_source.append_finite
      [ (r_fact 1, q 1 2); (r_fact 2, q 1 3); (r_fact 3, q 1 4) ]
      (Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
         ~facts:(fun j -> Fact.make "N" [ i j ])
         ())
  in
  let sock =
    let n = ref 0 in
    fun () ->
      incr n;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "iowpdb_bench_%d_%d.sock" (Unix.getpid ()) !n)
  in
  let with_server ?(domains = 2) ?(admission = Admission.default_config)
      ?default_deadline_s ?(cache_capacity = 0) f =
    let path = sock () in
    let cfg =
      {
        Server.endpoint = `Unix path;
        make_source = open_world_source;
        policy_label = "bench-geometric";
        domains;
        admission;
        default_eps = 0.01;
        default_samples = 2_000;
        shed_samples = 200;
        default_deadline_s;
        cache_capacity;
        warm_cache = None;
        updatable = None;
      }
    in
    let t = Server.start cfg in
    Fun.protect
      ~finally:(fun () ->
        Server.request_drain t;
        Server.wait t)
      (fun () -> f (`Unix path))
  in
  let call endpoint ?eps ?deadline_ms ~seed query =
    let conn = Client.connect endpoint in
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        Client.request conn
          (Protocol.Query { query; eps; deadline_ms; mc_samples = None; seed }))
  in
  let assert_sound what = function
    | Protocol.Answer { lo; hi; estimate; _ } ->
      if
        not
          (0.0 <= lo && lo <= estimate && estimate <= hi && hi <= 1.0)
      then
        failwith
          (Printf.sprintf "E23 %s: unsound enclosure [%.17g, %.17g] ~ %.17g"
             what lo hi estimate)
    | _ -> failwith (Printf.sprintf "E23 %s: expected an answer" what)
  in
  let cheap = "exists x. R(x)" (* exact: P = 3/4 *)
  and costly = "exists x. exists y. R(x) & N(y)" in
  (* --- capacity ----------------------------------------------------- *)
  let n_cap = if !smoke then 60 else 200 in
  let latencies = Array.make n_cap 0.0 in
  let cap_qps, p50, p99 =
    with_server ~default_deadline_s:5.0 @@ fun ep ->
    let t0 = Unix.gettimeofday () in
    for k = 0 to n_cap - 1 do
      let r0 = Unix.gettimeofday () in
      let r = call ep ~seed:k cheap in
      latencies.(k) <- Unix.gettimeofday () -. r0;
      assert_sound "capacity" r;
      match r with
      | Protocol.Answer { lo; hi; _ } when lo <= 0.75 && 0.75 <= hi -> ()
      | _ -> failwith "E23 capacity: enclosure must contain P = 3/4"
    done;
    let total = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    Array.sort compare latencies;
    let pct p =
      latencies.(max 0 (min (n_cap - 1)
                          (int_of_float (Float.ceil (p *. float_of_int n_cap)) - 1)))
    in
    (float_of_int n_cap /. total, pct 0.50, pct 0.99)
  in
  row "  capacity: %d sequential requests, connect-per-request\n" n_cap;
  row "    %.0f QPS, latency p50 %.2f ms, p99 %.2f ms\n" cap_qps (1e3 *. p50)
    (1e3 *. p99);
  (* --- overload ----------------------------------------------------- *)
  let threads = 8 and per_thread = if !smoke then 6 else 15 in
  let admission =
    { Admission.default_config with queue_bound = 4; window_s = 0.5 }
  in
  let answers = Atomic.make 0
  and shed_answers = Atomic.make 0
  and overloaded = Atomic.make 0 in
  with_server ~domains:2 ~admission ~default_deadline_s:2.0 (fun ep ->
      let worker tid () =
        for k = 0 to per_thread - 1 do
          match call ep ~eps:1e-6 ~seed:((tid * 1000) + k) costly with
          | Protocol.Answer { shed; _ } as r ->
            assert_sound "overload" r;
            Atomic.incr answers;
            if shed then Atomic.incr shed_answers
          | Protocol.Overloaded { retry_after_ms; _ } ->
            Atomic.incr overloaded;
            Thread.delay (float_of_int (min retry_after_ms 20) /. 1e3)
          | Protocol.Error_resp { code; msg } ->
            failwith (Printf.sprintf "E23 overload: error %d: %s" code msg)
          | Protocol.Health_ok _ | Protocol.Stats_resp _
          | Protocol.Update_ok _ ->
            failwith "E23 overload: unexpected response kind"
        done
      in
      let ts = List.init threads (fun tid -> Thread.create (worker tid) ()) in
      List.iter Thread.join ts);
  let total = threads * per_thread in
  let shed_rate =
    float_of_int (Atomic.get overloaded + Atomic.get shed_answers)
    /. float_of_int total
  in
  if Atomic.get answers = 0 then
    failwith "E23 overload: no request ever completed";
  if Atomic.get overloaded + Atomic.get shed_answers = 0 then
    failwith "E23 overload: saturation never triggered load shedding";
  row "  overload: %d threads x %d requests vs 2 workers, queue bound 4\n"
    threads per_thread;
  row "    %d answered (%d on the shed ladder), %d rejected; shed rate %.2f\n"
    (Atomic.get answers) (Atomic.get shed_answers) (Atomic.get overloaded)
    shed_rate;
  (* --- deadline ----------------------------------------------------- *)
  let pairs = if !smoke then 10 else 50 in
  let certified = ref 0 and exhausted = ref 0 and cache_hits = ref 0 in
  with_server ~cache_capacity:64 (fun ep ->
      for k = 0 to pairs - 1 do
        (match call ep ~deadline_ms:2_000 ~seed:k cheap with
        | Protocol.Answer { budget_exhausted; cached; _ } as r ->
          assert_sound "deadline/cheap" r;
          if not budget_exhausted then Stdlib.incr certified;
          if cached then Stdlib.incr cache_hits
        | _ -> failwith "E23 deadline: cheap query must answer");
        match call ep ~eps:1e-6 ~deadline_ms:1 ~seed:k costly with
        | Protocol.Answer { budget_exhausted; _ } as r ->
          assert_sound "deadline/costly" r;
          if budget_exhausted then Stdlib.incr exhausted
          else Stdlib.incr certified
        | _ -> failwith "E23 deadline: past-deadline query must still answer"
      done);
  let deadline_hit_rate = float_of_int !certified /. float_of_int (2 * pairs) in
  if !cache_hits = 0 then
    failwith "E23 deadline: repeated cheap query never hit the result cache";
  row "  deadline: %d x 2s on the cheap query vs %d x 1ms on the costly one\n"
    pairs pairs;
  row
    "    %d certified, %d best-so-far (budget exhausted), %d cache hits; \
     hit rate %.2f\n"
    !certified !exhausted !cache_hits deadline_hit_rate;
  metric "E23" "capacity_qps" cap_qps;
  metric "E23" "latency_p50" p50;
  metric "E23" "latency_p99" p99;
  metric "E23" "shed_rate" shed_rate;
  metric "E23" "deadline_hit_rate" deadline_hit_rate

(* E24 -- Store: the persistent mmap fact store.

   Three phases against the .iow pack format:

   - cold boot: a 100k-fact table parsed from text (Ti_table.of_file:
     line splitting, exact rational arithmetic, map building) vs
     mmap-loading its pack (header + whole-file checksum, zero facts
     decoded) and certifying a tail bound off the sidecar.  The ratio is
     the gated number: the pack must boot at least 20x faster.
   - truncation: 1000 tail-mass truncation queries answered by binary
     search over the precomputed sidecar vs the linear prefix scan a
     text-loaded table needs.  Gated at 10x.
   - warm restart: an in-process server booted from the pack with
     --warm-cache semantics: answer a costly open-world query, drain
     (persisting the epsilon-aware result cache tagged with the pack
     checksum), reboot, and re-ask — the warm boot must answer from the
     restored cache (cached = true, serve.cache.warm.reused > 0). *)

let e24 () =
  header "E24" "Store: zero-parse mmap boot, O(1) slices, warm restarts";
  let n = 100_000 in
  let text_path = Filename.temp_file "iowpdb_e24" ".ti"
  and pack_path = Filename.temp_file "iowpdb_e24" ".iow" in
  let cleanup = ref [ text_path; pack_path ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        !cleanup)
  @@ fun () ->
  (* Strictly descending distinct probabilities (2n-i)/(4n), so the pack
     order is forced and every tail is distinct. *)
  let oc = open_out text_path in
  for i = 0 to n - 1 do
    Printf.fprintf oc "R(%d) %d/%d\n" i ((2 * n) - i) (4 * n)
  done;
  close_out oc;
  let best f =
    let b = ref infinity and r = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      b := Float.min !b (Unix.gettimeofday () -. t0);
      r := Some v
    done;
    (!b, Option.get !r)
  in
  (* --- cold boot ---------------------------------------------------- *)
  let text_parse_seconds, ti = best (fun () -> Ti_table.of_file text_path) in
  Store.write_ti ~path:pack_path ti;
  let store_load_seconds, st =
    best (fun () ->
        let st = Store.load pack_path in
        (* What serve --store does at boot: wrap the pack as a fact
           source and certify one tail bound off the sidecar — still no
           fact decoded. *)
        let src = Store.fact_source st in
        (match Fact_source.tail_mass src 0 with
        | Some _ -> ()
        | None -> failwith "E24 boot: pack source must certify its tail");
        st)
  in
  (match Store.verify_against_ti st ti with
  | Ok () -> ()
  | Error msg -> failwith ("E24 boot: pack round-trip mismatch: " ^ msg));
  let boot_speedup = text_parse_seconds /. store_load_seconds in
  row "  cold boot, %d facts (%d pack bytes):\n" n (Store.byte_size st);
  row "    text parse %.1f ms, mmap load %.2f ms — %.0fx\n"
    (1e3 *. text_parse_seconds)
    (1e3 *. store_load_seconds)
    boot_speedup;
  if boot_speedup < 20.0 then
    failwith
      (Printf.sprintf "E24 boot: speedup %.1fx below the 20x gate"
         boot_speedup);
  (* --- truncation slices -------------------------------------------- *)
  let k_queries = 1_000 in
  (* The text-loaded comparator: probabilities as floats (decoded once,
     untimed), truncation by the linear prefix scan a sidecar-less table
     needs — accumulate until the remaining mass drops under eps. *)
  let probs = Array.init n (fun i -> Rational.to_float (Store.prob st i)) in
  let total = Array.fold_left ( +. ) 0.0 probs in
  let rng = Prng.create ~seed:24 () in
  let targets =
    Array.init k_queries (fun _ -> Store.tail_mass st (Prng.int rng (n + 1)))
  in
  let scan_for eps =
    let acc = ref 0.0 and i = ref 0 in
    while !i < n && total -. !acc > eps do
      acc := !acc +. probs.(!i);
      incr i
    done;
    !i
  in
  let slice_scan_seconds, _ =
    best (fun () ->
        let s = ref 0 in
        Array.iter (fun eps -> s := !s + scan_for eps) targets;
        !s)
  in
  let slice_sidecar_seconds, _ =
    best (fun () ->
        let s = ref 0 in
        Array.iter
          (fun eps -> s := !s + fst (Store.truncation_for_mass st ~eps))
          targets;
        !s)
  in
  (* Same answers up to float-rounding slack between the two
     accumulators: the sidecar result must certify its bound. *)
  Array.iter
    (fun eps ->
      let m, tail = Store.truncation_for_mass st ~eps in
      if tail > eps then failwith "E24 slice: sidecar answer not certified";
      if m > 0 && Store.tail_mass st (m - 1) <= eps then
        failwith "E24 slice: sidecar answer not minimal")
    targets;
  let slice_speedup = slice_scan_seconds /. slice_sidecar_seconds in
  row "  truncation, %d tail-mass queries on %d facts:\n" k_queries n;
  row "    linear scan %.1f ms, sidecar search %.2f ms — %.0fx\n"
    (1e3 *. slice_scan_seconds)
    (1e3 *. slice_sidecar_seconds)
    slice_speedup;
  if slice_speedup < 10.0 then
    failwith
      (Printf.sprintf "E24 slice: speedup %.1fx below the 10x gate"
         slice_speedup);
  (* --- warm restart -------------------------------------------------- *)
  let small_path = Filename.temp_file "iowpdb_e24" ".iow" in
  let warm_path = Filename.temp_file "iowpdb_e24" ".cache" in
  cleanup := small_path :: warm_path :: !cleanup;
  Store.write_ti ~path:small_path
    (Ti_table.create [ (r_fact 1, q 1 2); (r_fact 2, q 1 3); (r_fact 3, q 1 4) ]);
  let small = Store.load small_path in
  (try Sys.remove warm_path with Sys_error _ -> ());
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "iowpdb_e24_%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      Server.endpoint = `Unix sock;
      make_source =
        (fun () ->
          Store.fact_source
            ~rest:
              (Fact_source.geometric ~first:Rational.half ~ratio:Rational.half
                 ~facts:(fun j -> Fact.make "N" [ i j ])
                 ())
            small);
      policy_label = "e24-geometric";
      domains = 2;
      admission = Admission.default_config;
      default_eps = 0.01;
      default_samples = 2_000;
      shed_samples = 200;
      default_deadline_s = Some 10.0;
      cache_capacity = 64;
      warm_cache = Some (warm_path, Store.checksum_hex small ^ ":e24");
      updatable = None;
    }
  in
  let costly = "exists x. exists y. R(x) & N(y)" in
  let ask ep =
    let conn = Client.connect ep in
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        Client.request conn
          (Protocol.Query
             {
               query = costly;
               eps = Some 1e-3;
               deadline_ms = None;
               mc_samples = None;
               seed = 0;
             }))
  in
  let boot () =
    let t = Server.start cfg in
    let t0 = Unix.gettimeofday () in
    let r = ask (`Unix sock) in
    let dt = Unix.gettimeofday () -. t0 in
    Server.request_drain t;
    Server.wait t;
    (dt, r)
  in
  let cold_first_seconds, cold_r = boot () in
  let reused_before = Stats.find (Stats.snapshot ()) "serve.cache.warm.reused" in
  let warm_first_seconds, warm_r = boot () in
  let warm_reused =
    Stats.find (Stats.snapshot ()) "serve.cache.warm.reused" -. reused_before
  in
  (match (cold_r, warm_r) with
  | ( Protocol.Answer { cached = false; lo; hi; _ },
      Protocol.Answer { cached = true; lo = lo'; hi = hi'; _ } ) ->
    if not (lo = lo' && hi = hi') then
      failwith "E24 warm: restored enclosure differs from the computed one"
  | Protocol.Answer { cached = true; _ }, _ ->
    failwith "E24 warm: cold boot unexpectedly answered from cache"
  | _, Protocol.Answer { cached = false; _ } ->
    failwith "E24 warm: warm boot did not answer from the restored cache"
  | _ -> failwith "E24 warm: expected answers");
  if warm_reused < 1.0 then
    failwith "E24 warm: serve.cache.warm.reused did not advance";
  row "  warm restart (pack + persisted result cache):\n";
  row "    cold first answer %.1f ms, warm first answer %.2f ms (reused %.0f)\n"
    (1e3 *. cold_first_seconds)
    (1e3 *. warm_first_seconds)
    warm_reused;
  metric "E24" "text_parse_seconds" text_parse_seconds;
  metric "E24" "store_load_seconds" store_load_seconds;
  metric "E24" "boot_speedup" boot_speedup;
  metric "E24" "slice_scan_seconds" slice_scan_seconds;
  metric "E24" "slice_sidecar_seconds" slice_sidecar_seconds;
  metric "E24" "slice_speedup" slice_speedup;
  metric "E24" "cold_first_seconds" cold_first_seconds;
  metric "E24" "warm_first_seconds" warm_first_seconds;
  metric "E24" "warm_reused" warm_reused

(* E25 -- Delta: incremental evaluation under streaming updates.

   A delta session boots from a pack snapshot (the E24 store), compiles
   the lineage of [exists x. R(x)] once, then absorbs a seed-pure
   stream of deltas — mostly reweights (the streaming hot path), some
   deletes and re-inserts, a few genuinely fresh facts — re-deriving
   the certified interval after every delta through the memoized WMC
   fold, so only the slice of the diagram that can see the changed
   variable pays carrier arithmetic.  The comparator is what a server
   without the session layer would do per delta: recompile the lineage
   over the current table and fold the whole diagram from scratch.
   Gated: the per-delta incremental latency must beat the from-scratch
   latency by at least 5x (the ISSUE-10 acceptance bar), and the
   incremental interval must agree with a fresh session's (both enclose
   the same exact count). *)

let e25 () =
  header "E25" "Delta: incremental evaluation under streaming updates";
  let n = if !smoke then 5_000 else 100_000 in
  let k_deltas = if !smoke then 100 else 1_000 in
  let pack_path = Filename.temp_file "iowpdb_e25" ".iow" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove pack_path with Sys_error _ -> ())
  @@ fun () ->
  (* The materialized prefix the session starts from: a pack snapshot
     with strictly descending probabilities ~1/(4n), kept small enough
     that P(exists x. R(x)) does not saturate at 1 — so the
     incremental-vs-fresh interval agreement check below has teeth. *)
  Store.write_ti ~path:pack_path
    (Ti_table.create
       (List.init n (fun i -> (r_fact i, q ((2 * n) - i) (8 * n * n)))));
  let st = Store.load pack_path in
  let tbl = Fact_source.truncate (Store.fact_source st) n in
  let phi = parse "exists x. R(x)" in
  let t0 = Unix.gettimeofday () in
  let s = Delta_eval.Certified.create tbl phi in
  let iv0 = Delta_eval.Certified.prob s in
  let compile_seconds = Unix.gettimeofday () -. t0 in
  row "  session boot: %d facts, %d live nodes in %.1f ms, P in [%.9g, %.9g]\n"
    n
    (Delta_eval.Certified.live_nodes s)
    (1e3 *. compile_seconds) (Interval.lo iv0) (Interval.hi iv0);
  (* Seed-pure delta stream against the running table. *)
  let rng = Prng.create ~seed:25 () in
  let fresh = ref n in
  let deltas =
    Array.init k_deltas (fun _ ->
        match Prng.int rng 10 with
        | 0 | 1 -> Delta_eval.Delete (r_fact (Prng.int rng n))
        | 2 ->
          incr fresh;
          Delta_eval.Insert (r_fact !fresh, q 1 (4 * n))
        | _ ->
          Delta_eval.Reweight
            (r_fact (Prng.int rng n), q (1 + Prng.int rng (2 * n)) (8 * n * n)))
  in
  let kinds = Hashtbl.create 4 in
  let inc_t0 = Unix.gettimeofday () in
  Array.iter
    (fun d ->
      let k = Delta_eval.apply_kind_to_string (Delta_eval.Certified.apply s d) in
      ignore (Delta_eval.Certified.prob s : Interval.t);
      Hashtbl.replace kinds k
        (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
    deltas;
  let incremental_total_seconds = Unix.gettimeofday () -. inc_t0 in
  let incremental_avg = incremental_total_seconds /. float_of_int k_deltas in
  (* The robust supervisor's Delta rung answers off the live session. *)
  let a = Robust_eval.query_session s in
  (match a.Robust_eval.provenance.Robust_eval.attempts with
  | [ { Robust_eval.engine = Robust_eval.Delta;
        outcome = Robust_eval.Certified _; _ } ] ->
    ()
  | _ -> failwith "E25: expected one certified Delta attempt");
  let iv_inc = Delta_eval.Certified.prob s in
  (* From-scratch comparator on the post-stream table: recompile the
     lineage and fold the whole diagram, the per-delta cost without the
     session layer.  A few repetitions; the best time is the fairest
     comparator (warm caches, no GC hiccough). *)
  let reps = if !smoke then 3 else 5 in
  let scratch_best = ref infinity and iv_fresh = ref Interval.one in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let s' =
      Delta_eval.Certified.create (Delta_eval.Certified.table s) phi
    in
    iv_fresh := Delta_eval.Certified.prob s';
    scratch_best := Float.min !scratch_best (Unix.gettimeofday () -. t0)
  done;
  if Interval.intersect iv_inc !iv_fresh = None then
    failwith "E25: incremental and from-scratch intervals are disjoint";
  let speedup = !scratch_best /. incremental_avg in
  row "  %d deltas (%s):\n" k_deltas
    (String.concat ", "
       (Hashtbl.fold
          (fun k c acc -> Printf.sprintf "%d %s" c k :: acc)
          kinds []
       |> List.sort compare));
  row "    incremental %.3f ms/delta, from-scratch %.1f ms/delta — %.0fx\n"
    (1e3 *. incremental_avg) (1e3 *. !scratch_best) speedup;
  row "    P in [%.9g, %.9g] after the stream (epoch %d, %d live nodes)\n"
    (Interval.lo iv_inc) (Interval.hi iv_inc)
    (Delta_eval.Certified.epoch s)
    (Delta_eval.Certified.live_nodes s);
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "E25: incremental speedup %.1fx below the 5x gate"
         speedup);
  metric "E25" "n_facts" (float_of_int n);
  metric "E25" "n_deltas" (float_of_int k_deltas);
  metric "E25" "compile_seconds" compile_seconds;
  metric "E25" "incremental_total_seconds" incremental_total_seconds;
  metric "E25" "scratch_per_delta_seconds" !scratch_best;
  metric "E25" "speedup" speedup

(* ------------------------------------------------------------------ *)
(* Driver *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18);
    ("E19", e19); ("E20", e20); ("E21", e21); ("E22", e22); ("E23", e23);
    ("E24", e24); ("E25", e25);
  ]

let timing_experiments = [ ("E12", e12); ("E13", e13); ("D4", ablate_bdd_order) ]

(* The CI smoke subset: one experiment per engine family, each cheap at
   the reduced sample counts the [smoke] flag selects. *)
let smoke_ids =
  [ "E1"; "E3"; "E8"; "E17"; "E18"; "E19"; "E20"; "E21"; "E22"; "E23"; "E24";
    "E25" ]

let () =
  let args = Array.to_list Sys.argv in
  smoke := List.mem "--smoke" args;
  (match List.find_index (fun a -> a = "--json") args with
  | Some idx when idx + 1 < List.length args ->
    json_dir := Some (List.nth args (idx + 1))
  | _ -> ());
  let only =
    match List.find_index (fun a -> a = "--only") args with
    | Some idx when idx + 1 < List.length args ->
      Some (String.split_on_char ',' (List.nth args (idx + 1)))
    | _ -> if !smoke then Some smoke_ids else None
  in
  let no_timing = !smoke || List.mem "--no-timing" args in
  let wanted id =
    match only with None -> true | Some ids -> List.mem id ids
  in
  let run_one (id, f) =
    if wanted id then begin
      let t0 = Unix.gettimeofday () in
      f ();
      metric id "seconds" (Unix.gettimeofday () -. t0)
    end
  in
  List.iter run_one experiments;
  if not no_timing then List.iter run_one timing_experiments;
  (match !json_dir with Some dir -> write_json dir | None -> ());
  print_newline ()
