(* The seed BDD kernel, frozen verbatim (minus instrumentation) as the
   baseline for experiment E19: polymorphic hashtables with tuple keys
   for the unique / apply / negation caches, ite expanded into three
   binary applies, left-fold expression compilation, no GC.  Kept out of
   lib/ on purpose — it exists only so the benchmark can report an
   old-vs-new wall-clock ratio on identical workloads, not for use. *)

type t =
  | Leaf of bool
  | Node of { id : int; level : int; var : int; lo : t; hi : t }

type op = Op_and | Op_or | Op_xor

type manager = {
  order : int -> int;
  unique : (int * int * int, t) Hashtbl.t;
  apply_cache : (op * int * int, t) Hashtbl.t;
  neg_cache : (int, t) Hashtbl.t;
  mutable next_id : int;
}

let id = function Leaf false -> 0 | Leaf true -> 1 | Node n -> n.id

let manager ?(order = Fun.id) () =
  {
    order;
    unique = Hashtbl.create 1024;
    apply_cache = Hashtbl.create 1024;
    neg_cache = Hashtbl.create 256;
    next_id = 2;
  }

let mk m var lo hi =
  if id lo = id hi then lo
  else begin
    let key = (var, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = m.next_id; level = m.order var; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m v = mk m v (Leaf false) (Leaf true)
let level = function Leaf _ -> max_int | Node n -> n.level

let rec neg m t =
  match t with
  | Leaf b -> Leaf (not b)
  | Node n -> (
    match Hashtbl.find_opt m.neg_cache n.id with
    | Some r -> r
    | None ->
      let r = mk m n.var (neg m n.lo) (neg m n.hi) in
      Hashtbl.add m.neg_cache n.id r;
      r)

let apply_leaf op a b =
  match op with Op_and -> a && b | Op_or -> a || b | Op_xor -> a <> b

let rec apply m op a b =
  match (op, a, b) with
  | _, Leaf x, Leaf y -> Leaf (apply_leaf op x y)
  | Op_and, Leaf false, _ | Op_and, _, Leaf false -> Leaf false
  | Op_and, Leaf true, x | Op_and, x, Leaf true -> x
  | Op_or, Leaf true, _ | Op_or, _, Leaf true -> Leaf true
  | Op_or, Leaf false, x | Op_or, x, Leaf false -> x
  | Op_xor, Leaf false, x | Op_xor, x, Leaf false -> x
  | Op_xor, Leaf true, x | Op_xor, x, Leaf true -> neg m x
  | _ ->
    if (op = Op_and || op = Op_or) && id a = id b then a
    else begin
      let ia = id a and ib = id b in
      let key = if ia <= ib then (op, ia, ib) else (op, ib, ia) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some r -> r
      | None ->
        let la = level a and lb = level b in
        let r =
          if la < lb then begin
            match a with
            | Node n -> mk m n.var (apply m op n.lo b) (apply m op n.hi b)
            | Leaf _ -> assert false
          end
          else if lb < la then begin
            match b with
            | Node n -> mk m n.var (apply m op a n.lo) (apply m op a n.hi)
            | Leaf _ -> assert false
          end
          else begin
            match (a, b) with
            | Node na, Node nb ->
              mk m na.var (apply m op na.lo nb.lo) (apply m op na.hi nb.hi)
            | _ -> assert false
          end
        in
        Hashtbl.add m.apply_cache key r;
        r
    end

let conj m a b = apply m Op_and a b
let disj m a b = apply m Op_or a b
let xor m a b = apply m Op_xor a b
let ite m f g h = disj m (conj m f g) (conj m (neg m f) h)

let rec of_expr m = function
  | Bool_expr.True -> Leaf true
  | Bool_expr.False -> Leaf false
  | Bool_expr.Var i -> var m i
  | Bool_expr.Not e -> neg m (of_expr m e)
  | Bool_expr.And es ->
    List.fold_left (fun acc e -> conj m acc (of_expr m e)) (Leaf true) es
  | Bool_expr.Or es ->
    List.fold_left (fun acc e -> disj m acc (of_expr m e)) (Leaf false) es

let node_count m = Hashtbl.length m.unique

let fold_prob ~zero ~one ~node t =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf false -> zero
    | Leaf true -> one
    | Node n -> (
      match Hashtbl.find_opt memo n.id with
      | Some r -> r
      | None ->
        let r = node n.var (go n.lo) (go n.hi) in
        Hashtbl.add memo n.id r;
        r)
  in
  go t

let float_probability ~weight t =
  fold_prob ~zero:0.0 ~one:1.0
    ~node:(fun v plo phi ->
      let p = weight v in
      (p *. phi) +. ((1.0 -. p) *. plo))
    t
